//! The paged scan API: a [`Cursor`] walks `[lo, hi]` in bounded pages,
//! each page one linearizable cross-shard transaction
//! ([`leaplist::LeapListLt::range_page_group`]) with a resume key — so a
//! million-key scan never materializes in one transaction, never holds a
//! transaction open between pages, and keeps working while a
//! [`crate::Rebalancer`] moves the very keys it is scanning — including
//! pages that straddle **several concurrent disjoint migrations**: each
//! page's plan includes both sides of every overlay it overlaps, and its
//! range-scoped stamp ignores overlays elsewhere, so a disjoint range
//! rebalancing never forces a page to retry. This is also the primitive
//! the migration driver itself pages with.

use crate::store::LeapStore;

/// Default pairs per page for [`LeapStore::scan`].
pub const DEFAULT_PAGE_SIZE: usize = 256;

/// A resumable, paged scan over `[lo, hi]` of a [`LeapStore`].
///
/// Every [`Cursor::next_page`] is one linearizable snapshot transaction of
/// at most `page_size` pairs; between pages the store runs free, so a
/// concurrent writer may change keys the cursor has not reached yet (the
/// usual cursor contract — each page is internally consistent, the scan as
/// a whole is not one snapshot).
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1_000));
/// for k in 0..100 {
///     store.put(k, k);
/// }
/// let mut seen = Vec::new();
/// for page in store.scan_pages(0, 999, 16) {
///     assert!(page.len() <= 16);
///     seen.extend(page);
/// }
/// assert_eq!(seen.len(), 100);
/// assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
/// ```
pub struct Cursor<'a, V> {
    store: &'a LeapStore<V>,
    hi: u64,
    /// Next key to resume from; `None` once exhausted.
    next: Option<u64>,
    page_size: usize,
}

impl<'a, V: Clone + Send + Sync + 'static> Cursor<'a, V> {
    pub(crate) fn new(store: &'a LeapStore<V>, lo: u64, hi: u64, page_size: usize) -> Self {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        assert!(page_size > 0, "a page must hold at least one pair");
        Cursor {
            store,
            hi,
            next: (lo <= hi).then_some(lo),
            page_size,
        }
    }

    /// The next page: at most `page_size` ascending pairs from one
    /// linearizable snapshot, or `None` when the range is exhausted.
    /// Never returns an empty page.
    pub fn next_page(&mut self) -> Option<Vec<(u64, V)>> {
        let lo = self.next?;
        let page = self.store.range_page_merged(lo, self.hi, self.page_size);
        self.next = match page.last() {
            // A full page may have more behind it; resume past its last
            // key. A short page proves every visited shard was exhausted.
            Some(&(last, _)) if page.len() == self.page_size && last < self.hi => Some(last + 1),
            _ => None,
        };
        (!page.is_empty()).then_some(page)
    }

    /// Where the next page resumes (`None` once exhausted). Persist this
    /// to continue a scan later with a fresh cursor over
    /// `[resume_key, hi]`.
    pub fn resume_key(&self) -> Option<u64> {
        self.next
    }

    /// The page size bound.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

impl<V: Clone + Send + Sync + 'static> Iterator for Cursor<'_, V> {
    type Item = Vec<(u64, V)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_page()
    }
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// A paged scan of `[lo, hi]` with the default page size
    /// ([`DEFAULT_PAGE_SIZE`]). See [`Cursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn scan(&self, lo: u64, hi: u64) -> Cursor<'_, V> {
        Cursor::new(self, lo, hi, DEFAULT_PAGE_SIZE)
    }

    /// A paged scan of `[lo, hi]` yielding at most `page_size` pairs per
    /// page. See [`Cursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX` or `page_size` is zero.
    pub fn scan_pages(&self, lo: u64, hi: u64, page_size: usize) -> Cursor<'_, V> {
        Cursor::new(self, lo, hi, page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Partitioning;
    use crate::store::StoreConfig;
    use leaplist::Params;

    fn store(mode: Partitioning) -> LeapStore<u64> {
        LeapStore::new(
            StoreConfig::new(4, mode)
                .with_key_space(1_000)
                .with_params(Params {
                    node_size: 4,
                    max_level: 6,
                    use_trie: true,
                    ..Params::default()
                }),
        )
    }

    #[test]
    fn pages_tile_the_range_in_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let s = store(mode);
            for k in 0..150u64 {
                s.put(k * 3, k);
            }
            for page_size in [1usize, 7, 64, 1_000] {
                let mut seen = Vec::new();
                let mut pages = 0;
                for page in s.scan_pages(0, 999, page_size) {
                    assert!(page.len() <= page_size, "{mode:?}");
                    assert!(page.windows(2).all(|w| w[0].0 < w[1].0));
                    seen.extend(page);
                    pages += 1;
                }
                assert_eq!(seen, s.range(0, 999), "{mode:?} page_size {page_size}");
                assert!(pages >= seen.len() / page_size, "{mode:?}");
            }
        }
    }

    #[test]
    fn cursor_respects_bounds_and_resumes() {
        let s = store(Partitioning::Range);
        for k in 0..50u64 {
            s.put(k, k);
        }
        let mut c = s.scan_pages(10, 29, 8);
        let p1 = c.next_page().expect("first page");
        assert_eq!(p1.first().unwrap().0, 10);
        assert_eq!(p1.len(), 8);
        assert_eq!(c.resume_key(), Some(18));
        // A fresh cursor from the resume key continues seamlessly.
        let rest: Vec<_> = s.scan_pages(18, 29, 8).flatten().collect();
        assert_eq!(rest.first().unwrap().0, 18);
        assert_eq!(rest.last().unwrap().0, 29);
        // Exhaustion: no empty trailing page.
        let mut c = s.scan_pages(40, 49, 10);
        assert_eq!(c.next_page().unwrap().len(), 10);
        assert_eq!(c.next_page(), None);
        assert_eq!(c.resume_key(), None);
        // Empty and inverted ranges yield no pages.
        assert_eq!(s.scan(600, 999).next(), None);
        assert_eq!(s.scan(30, 10).next(), None);
        assert_eq!(s.scan(30, 10).resume_key(), None);
    }

    #[test]
    fn cursor_sees_each_key_once_across_a_split() {
        let s = store(Partitioning::Range);
        for k in 0..120u64 {
            s.put(k, k);
        }
        let mut c = s.scan_pages(0, 999, 32);
        let p1 = c.next_page().expect("page before split");
        // Reshard mid-scan: split the hot shard, drain it fully.
        s.split_shard(0, 60).expect("split");
        s.rebalance_until_idle();
        let mut seen: Vec<_> = p1;
        for page in c {
            seen.extend(page);
        }
        assert_eq!(
            seen,
            (0..120u64).map(|k| (k, k)).collect::<Vec<_>>(),
            "no key lost or doubled across the epoch change"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_page_size_rejected() {
        let s = store(Partitioning::Hash);
        s.scan_pages(0, 10, 0);
    }
}
