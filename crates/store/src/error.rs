//! The store's graceful-degradation error surface: typed errors returned
//! by the bounded (`*_within`) operations and the admission-controlled
//! [`crate::Batcher`] front-end, instead of unbounded retry loops or
//! silent blocking.

/// Why a store operation was refused or gave up instead of blocking or
/// livelocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The operation's [`leap_stm::RetryPolicy`] budget ran out before a
    /// transaction committed (pathological contention or injected
    /// faults). The store state is untouched by the failed attempt.
    Timeout {
        /// Transaction attempts consumed before giving up.
        attempts: u64,
    },
    /// The batcher's admission queue was at its configured depth (or the
    /// drain was shed under fault injection): the op was rejected at the
    /// door rather than queued behind a backlog that is not draining.
    Overloaded {
        /// Queue population observed at rejection time.
        queued: usize,
    },
    /// The batcher's combiner lock did not become available within the
    /// configured wedge timeout and the op was still unclaimed in the
    /// queue: the submitter withdrew it rather than blocking forever
    /// behind a wedged combiner.
    CombinerWedged,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Timeout { attempts } => {
                write!(
                    f,
                    "transaction retry budget exhausted after {attempts} attempts"
                )
            }
            StoreError::Overloaded { queued } => {
                write!(f, "batcher overloaded ({queued} ops queued); op shed")
            }
            StoreError::CombinerWedged => {
                f.write_str("batcher combiner wedged past the configured timeout; op withdrawn")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<leap_stm::Timeout> for StoreError {
    fn from(t: leap_stm::Timeout) -> Self {
        StoreError::Timeout {
            attempts: t.attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_degradation() {
        assert!(StoreError::Timeout { attempts: 9 }
            .to_string()
            .contains("9 attempts"));
        assert!(StoreError::Overloaded { queued: 4 }
            .to_string()
            .contains("4 ops"));
        assert!(StoreError::CombinerWedged.to_string().contains("wedged"));
        let from: StoreError = leap_stm::Timeout { attempts: 3 }.into();
        assert_eq!(from, StoreError::Timeout { attempts: 3 });
        let dyn_err: &dyn std::error::Error = &StoreError::CombinerWedged;
        assert!(dyn_err.source().is_none());
    }
}
