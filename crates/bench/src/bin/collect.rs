//! Collector: parses benchmark output into a `BENCH_leapstore.json`
//! trajectory file, so successive runs accumulate a machine-readable
//! history (format documented in the repository README).
//!
//! ```text
//! collect [--label NAME] [--out FILE] [--check] [--require KEY]...
//!         [--gate BASELINE.json [--max-regress PCT]] [INPUT...]
//! ```
//!
//! Reads the given files (or stdin when none are given) and extracts:
//!
//! * `stats <series> <json>` lines, as emitted by the `leapstore` figures
//!   panel (`cargo run -p leap-bench --bin figures -- leapstore`);
//! * vendored-criterion result lines
//!   (`group/bench/param  X ns/iter (median)  Y ns/iter (mean)  n=N`), as
//!   emitted by `cargo bench --bench store`.
//!
//! Each invocation appends one run object to the output array (default
//! `BENCH_leapstore.json` in the current directory), creating the file
//! when missing. The stats JSON objects are passed through verbatim; no
//! JSON parser is needed on either side.
//!
//! `--check` is the CI schema gate: nothing is written; instead the run
//! fails (exit 1) when the input carries a malformed `stats` line, no
//! stats at all, or — with `--require KEY` (repeatable) — a stats object
//! missing a required `"KEY":` field.
//!
//! `--gate BASELINE.json` is the CI SLO regression gate: nothing is
//! written; the fresh panel's gated series (per-op `p99_ns`/`p999_ns`,
//! txn retries, and the degradation counters `shed_ops`, `timeouts`,
//! `aborted_migrations`) are compared against the most recent trajectory
//! entry carrying the same series. Exit 1 when any series degrades by
//! more than `--max-regress PCT` (default 100) above its noise floor,
//! exit 2 when nothing at all was comparable; series the baseline does
//! not know yet are skipped with a note.

use leap_bench::check::balanced_json_object;
use std::io::Read;

/// One `stats <series> <json>` line. Malformed JSON (unbalanced braces,
/// an unterminated string, trailing garbage) is refused: a bad line
/// appended verbatim would poison the whole `BENCH_leapstore.json` array
/// for every later run.
fn parse_stats_line(line: &str) -> Option<(String, String)> {
    let rest = line.strip_prefix("stats ")?;
    let (label, json) = rest.split_once(' ')?;
    let json = json.trim();
    if !(json.starts_with('{') && json.ends_with('}')) {
        return None;
    }
    if !balanced_json_object(json) {
        eprintln!("collect: refusing malformed stats line for '{label}'");
        return None;
    }
    Some((label.to_string(), json.to_string()))
}

/// One vendored-criterion result line:
/// `leapstore/get/hash  77.6 ns/iter (median)  79.5 ns/iter (mean)  n=20`.
fn parse_criterion_line(line: &str) -> Option<(String, f64, f64, u64)> {
    let t: Vec<&str> = line.split_whitespace().collect();
    if t.len() < 8 || !t[0].contains('/') || t[2] != "ns/iter" || t[3] != "(median)" {
        return None;
    }
    let median: f64 = t[1].parse().ok()?;
    let mean: f64 = t[4].parse().ok()?;
    let n: u64 = t.last()?.strip_prefix("n=")?.parse().ok()?;
    Some((t[0].to_string(), median, mean, n))
}

/// Renders one run entry from the parsed lines (pass-through JSON).
fn render_entry(
    label: &str,
    stats: &[(String, String)],
    bench: &[(String, f64, f64, u64)],
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"label\":\"{}\"", label.replace('"', "'")));
    out.push_str(",\"figures\":{");
    for (i, (series, json)) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", series.replace('"', "'"), json));
    }
    out.push_str("},\"criterion\":{");
    for (i, (id, median, mean, n)) in bench.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"median_ns\":{median},\"mean_ns\":{mean},\"samples\":{n}}}",
            id.replace('"', "'")
        ));
    }
    out.push_str("}}");
    out
}

/// Appends `entry` to the JSON array in `existing` (textual splice — the
/// file only ever holds what this tool wrote). Malformed or missing
/// content starts a fresh array.
fn splice_into_trajectory(existing: Option<&str>, entry: &str) -> String {
    if let Some(prev) = existing {
        let trimmed = prev.trim_end();
        if let Some(body) = trimmed.strip_suffix(']') {
            let body = body.trim_end();
            if body.ends_with('[') {
                return format!("{body}\n  {entry}\n]\n");
            }
            let body = body.strip_suffix(',').unwrap_or(body);
            return format!("{body},\n  {entry}\n]\n");
        }
    }
    format!("[\n  {entry}\n]\n")
}

/// The `--check` gate: every `stats` line well-formed, at least one
/// present, and every required key in every stats object. Returns the
/// failures, empty = pass.
fn check_input(text: &str, require: &[String]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut stats = Vec::new();
    for line in text.lines() {
        if !line.starts_with("stats ") {
            continue;
        }
        match parse_stats_line(line) {
            Some(s) => stats.push(s),
            None => failures.push(format!("malformed stats line: {line}")),
        }
    }
    if stats.is_empty() {
        failures.push("no stats lines found in input".to_string());
    }
    for (series, json) in &stats {
        for key in require {
            if !json.contains(&format!("\"{key}\":")) {
                failures.push(format!("series '{series}' is missing required key '{key}'"));
            }
        }
    }
    failures
}

// --- SLO regression gate -------------------------------------------------
//
// The trajectory file is only ever written by this tool, so a full JSON
// parser is overkill — but the gate must still read *into* the pass-through
// stats objects. The extractor below walks balanced values (depth-tracked,
// string-aware), which is exactly enough to chain `"key":` lookups.

/// Byte length of the JSON value starting at `s[0]` — the prefix up to
/// the first top-level `,`/`}`/`]` outside any braces or string.
fn value_end(s: &str) -> usize {
    let bytes = s.as_bytes();
    let (mut depth, mut in_str, mut esc) = (0u64, false, false);
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
                if depth == 0 {
                    return i + 1;
                }
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                if depth == 0 {
                    return i; // the enclosing container closes: scalar ended
                }
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            b',' if depth == 0 => return i,
            _ => {}
        }
    }
    s.len()
}

/// The value of top-level `"key"` inside a JSON object, as a text slice.
fn object_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let mut rest = json.trim().strip_prefix('{')?.trim_start();
    let needle = format!("\"{key}\"");
    while !rest.starts_with('}') && !rest.is_empty() {
        let klen = value_end(rest);
        let k = &rest[..klen];
        rest = rest[klen..].trim_start().strip_prefix(':')?.trim_start();
        let vlen = value_end(rest);
        if k == needle {
            return Some(&rest[..vlen]);
        }
        rest = rest[vlen..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    None
}

/// A numeric field at a `/`-separated object path, e.g.
/// `store/op_latency/put/p99_ns`.
fn path_number(json: &str, path: &str) -> Option<f64> {
    let mut v = json;
    for key in path.split('/') {
        v = object_field(v, key)?;
    }
    v.trim().parse().ok()
}

/// Top-level entries of a JSON array (the trajectory file), in order.
fn array_entries(trajectory: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let Some(mut rest) = trajectory.trim().strip_prefix('[') else {
        return out;
    };
    rest = rest.trim_start();
    while !rest.starts_with(']') && !rest.is_empty() {
        let vlen = value_end(rest);
        out.push(&rest[..vlen]);
        rest = rest[vlen..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    out
}

/// Per-op latency quantiles under SLO watch. A tail measured below the
/// floor is noise (quick-scale runs put whole-op p99s well above it when
/// something is actually wrong), so the gate only fires above it.
const GATED_OPS: [&str; 8] = [
    "get",
    "put",
    "delete",
    "apply",
    "range",
    "scan_page",
    "len",
    "snapshot_page",
];
const GATED_QUANTILES: [&str; 2] = ["p99_ns", "p999_ns"];
const LATENCY_FLOOR_NS: f64 = 100_000.0;
/// Degradation counters: a handful of sheds or timeouts is normal chaos;
/// the gate watches for them growing past the floor.
const GATED_COUNTERS: [&str; 3] = [
    "store/shed_ops",
    "store/stm/timeouts",
    "store/aborted_migrations",
];
const COUNTER_FLOOR: f64 = 20.0;
/// Retry-count histogram: values are attempt counts, not nanoseconds.
const RETRY_FLOOR: f64 = 8.0;

/// One gated value: where it lives, the noise floor under which it never
/// fires, and (for quantiles) the sibling sample-count path plus the
/// minimum count that makes the quantile meaningful — the p999 of a few
/// hundred samples is just the max, and one scheduler blip would flake
/// the gate.
struct GatedPath {
    path: String,
    floor: f64,
    count_path: Option<String>,
    min_count: f64,
}

/// Everything the gate inspects per figure series.
fn gated_paths() -> Vec<GatedPath> {
    let mut paths = Vec::new();
    for op in GATED_OPS {
        for (q, min_count) in GATED_QUANTILES.iter().zip([100.0, 1000.0]) {
            paths.push(GatedPath {
                path: format!("store/op_latency/{op}/{q}"),
                floor: LATENCY_FLOOR_NS,
                count_path: Some(format!("store/op_latency/{op}/count")),
                min_count,
            });
        }
    }
    paths.push(GatedPath {
        path: "store/txn_retries/p99_ns".to_string(),
        floor: RETRY_FLOOR,
        count_path: Some("store/txn_retries/count".to_string()),
        min_count: 100.0,
    });
    for c in GATED_COUNTERS {
        paths.push(GatedPath {
            path: c.to_string(),
            floor: COUNTER_FLOOR,
            count_path: None,
            min_count: 0.0,
        });
    }
    paths
}

/// Compares the fresh panel's stats series against the most recent
/// trajectory entry carrying each series. Returns
/// `(regressions, notes, compared-pair count)`.
fn gate_run(
    current: &[(String, String)],
    baseline: &str,
    max_regress_pct: f64,
) -> (Vec<String>, Vec<String>, usize) {
    let entries = array_entries(baseline);
    let mut regressions = Vec::new();
    let mut notes = Vec::new();
    let mut compared = 0usize;
    for (series, json) in current {
        // Baseline: newest entry that knows this series at all.
        let base = entries
            .iter()
            .rev()
            .find_map(|e| object_field(e, "figures").and_then(|f| object_field(f, series)));
        let Some(base) = base else {
            notes.push(format!("series '{series}' has no baseline yet — skipped"));
            continue;
        };
        for g in gated_paths() {
            let path = &g.path;
            let Some(new) = path_number(json, path) else {
                continue; // series without this surface (e.g. "store":null)
            };
            let Some(old) = path_number(base, path) else {
                notes.push(format!("{series}:{path} missing from baseline — skipped"));
                continue;
            };
            // Quantile of an undersampled histogram (on either side) is
            // just the max of a handful of ops: not gateable.
            if let Some(cp) = &g.count_path {
                let enough = |side: &str| path_number(side, cp).is_some_and(|c| c >= g.min_count);
                if !enough(json) || !enough(base) {
                    continue;
                }
            }
            compared += 1;
            let allowed = old * (1.0 + max_regress_pct / 100.0);
            if new > allowed && new > g.floor {
                regressions.push(format!(
                    "{series}:{path} regressed {old} -> {new} \
                     (allowed {allowed:.0} at +{max_regress_pct}%)"
                ));
            }
        }
    }
    (regressions, notes, compared)
}

fn main() {
    let mut label = String::from("run");
    let mut out_path = String::from("BENCH_leapstore.json");
    let mut inputs: Vec<String> = Vec::new();
    let mut check = false;
    let mut require: Vec<String> = Vec::new();
    let mut gate: Option<String> = None;
    let mut max_regress = 100.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().unwrap_or_else(|| "run".into()),
            "--out" => out_path = it.next().unwrap_or(out_path),
            "--check" => check = true,
            "--require" => require.push(it.next().unwrap_or_default()),
            "--gate" => gate = it.next(),
            "--max-regress" => {
                let raw = it.next().unwrap_or_default();
                max_regress = raw.parse().unwrap_or_else(|_| {
                    eprintln!("collect: bad --max-regress '{raw}' (want a percentage)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: collect [--label NAME] [--out FILE] [--check] [--require KEY]... \
                     [--gate BASELINE.json [--max-regress PCT]] [INPUT...]"
                );
                return;
            }
            other => inputs.push(other.to_string()),
        }
    }
    let mut text = String::new();
    if inputs.is_empty() {
        std::io::stdin()
            .read_to_string(&mut text)
            .expect("read stdin");
    } else {
        for path in &inputs {
            let content =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            text.push_str(&content);
            text.push('\n');
        }
    }
    if check {
        let failures = check_input(&text, &require);
        if failures.is_empty() {
            eprintln!("collect: check passed ({} required keys)", require.len());
            return;
        }
        for f in &failures {
            eprintln!("collect: check failed: {f}");
        }
        std::process::exit(1);
    }
    if let Some(baseline_path) = gate {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let current: Vec<(String, String)> = text.lines().filter_map(parse_stats_line).collect();
        let (regressions, notes, compared) = gate_run(&current, &baseline, max_regress);
        for n in &notes {
            eprintln!("collect: gate note: {n}");
        }
        if compared == 0 {
            eprintln!(
                "collect: gate failed: nothing comparable between the panel \
                 ({} series) and {baseline_path}",
                current.len()
            );
            std::process::exit(2);
        }
        if regressions.is_empty() {
            eprintln!(
                "collect: gate passed ({compared} series values within +{max_regress}% of {baseline_path})"
            );
            return;
        }
        for r in &regressions {
            eprintln!("collect: gate failed: {r}");
        }
        std::process::exit(1);
    }
    let mut stats = Vec::new();
    let mut bench = Vec::new();
    for line in text.lines() {
        if let Some(s) = parse_stats_line(line) {
            stats.push(s);
        } else if let Some(b) = parse_criterion_line(line) {
            bench.push(b);
        }
    }
    if stats.is_empty() && bench.is_empty() {
        eprintln!("collect: no `stats` or criterion lines found in input");
        std::process::exit(1);
    }
    let entry = render_entry(&label, &stats, &bench);
    let existing = std::fs::read_to_string(&out_path).ok();
    let updated = splice_into_trajectory(existing.as_deref(), &entry);
    std::fs::write(&out_path, &updated).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!(
        "collect: appended run '{label}' ({} figure series, {} criterion rows) -> {out_path}",
        stats.len(),
        bench.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lines_round_trip() {
        let (label, json) =
            parse_stats_line("stats Store-hash {\"store\":{\"shards\":[]},\"latency\":{}}")
                .expect("well-formed stats line");
        assert_eq!(label, "Store-hash");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(parse_stats_line("statsStore-hash {}").is_none());
        assert!(parse_stats_line("stats Store-hash notjson").is_none());
        assert!(parse_stats_line("== leapstore: title ==").is_none());
    }

    /// A malformed stats line must be refused, not appended — pass-through
    /// splicing would otherwise corrupt `BENCH_leapstore.json` for every
    /// later run.
    #[test]
    fn malformed_stats_lines_are_refused() {
        // Over-closed / under-closed braces that still satisfy the naive
        // starts-with/ends-with check.
        for bad in [
            "stats S {\"a\":1}}",             // extra closer
            "stats S {{\"a\":1}",             // extra opener
            "stats S {\"a\":[1,2}",           // bracket closed by brace
            "stats S {\"a\":\"un}",           // unterminated string
            "stats S {\"a\":1} {\"b\":2}",    // trailing second object
            "stats S {\"a\":1}]}",            // stray closers
            "stats S {\"a\":\"}\"} garbage}", // text after the object
            "stats S {\"日本\":1} {}",        // multibyte + trailing object
        ] {
            assert!(parse_stats_line(bad).is_none(), "{bad}");
        }
        // Well-formed objects — including braces inside strings, escaped
        // quotes, and multibyte characters (byte-offset regression: a
        // char-counted index once made these reject or panic) — pass.
        for good in [
            "stats S {}",
            "stats S {\"a\":{\"b\":[1,2,{}]},\"c\":\"}{\"}",
            "stats S {\"a\":\"esc\\\"}\"}",
            "stats S {\"label\":\"débit-日本\"}",
            "stats S {\"日\":{\"本\":[1]}}",
            "stats Store-reshard {\"store\":{\"shards\":[]},\"latency\":{}}",
        ] {
            assert!(parse_stats_line(good).is_some(), "{good}");
        }
        assert!(balanced_json_object("{\"x\":1}"));
        assert!(
            !balanced_json_object("[1,2]"),
            "top level must be an object"
        );
        assert!(!balanced_json_object(""));
    }

    #[test]
    fn criterion_lines_round_trip() {
        let (id, median, mean, n) = parse_criterion_line(
            "leapstore/multi_put_collide/range       10707.5 ns/iter (median)  10864.2 ns/iter (mean)  n=20",
        )
        .expect("well-formed criterion line");
        assert_eq!(id, "leapstore/multi_put_collide/range");
        assert!((median - 10707.5).abs() < 1e-9);
        assert!((mean - 10864.2).abs() < 1e-9);
        assert_eq!(n, 20);
        assert!(parse_criterion_line("   1024       12          14").is_none());
        assert!(parse_criterion_line("# scale=quick duration=1s").is_none());
    }

    /// The CI gate: malformed stats lines, an empty panel, or a missing
    /// required key each fail the check; a clean panel passes.
    #[test]
    fn check_mode_gates_on_shape_and_required_keys() {
        let good = "== title ==\nstats A {\"store\":{\"epoch\":1},\"latency\":{\"p999_ns\":9}}\n\
                    stats B {\"store\":null,\"latency\":{\"p999_ns\":3}}\n";
        assert!(check_input(good, &[]).is_empty());
        assert!(check_input(good, &["latency".into(), "p999_ns".into()]).is_empty());
        let missing = check_input(good, &["op_latency".into()]);
        assert_eq!(missing.len(), 2, "both series lack the key: {missing:?}");
        assert!(missing[0].contains("op_latency"));
        let broken = check_input("stats A {\"x\":1}}\n", &[]);
        assert!(broken.iter().any(|f| f.contains("malformed")), "{broken:?}");
        let empty = check_input("no stats here\n", &[]);
        assert!(empty.iter().any(|f| f.contains("no stats")), "{empty:?}");
    }

    /// The extractor behind the gate: balanced-value walking must survive
    /// nesting, strings with braces, and scalar terminators.
    #[test]
    fn path_extraction_reads_nested_fields() {
        let json = r#"{"a":{"b":{"c":42,"s":"},{"},"d":[1,{"x":2}]},"e":7.5}"#;
        assert_eq!(path_number(json, "a/b/c"), Some(42.0));
        assert_eq!(path_number(json, "e"), Some(7.5));
        assert_eq!(path_number(json, "a/b/missing"), None);
        assert_eq!(path_number(json, "a/d"), None, "arrays are not numbers");
        assert_eq!(
            object_field(json, "a").and_then(|a| object_field(a, "d")),
            Some("[1,{\"x\":2}]")
        );
        let arr = r#"[ {"label":"one","n":1} , {"label":"two","n":2} ]"#;
        let entries = array_entries(arr);
        assert_eq!(entries.len(), 2);
        assert_eq!(path_number(entries[1], "n"), Some(2.0));
        assert!(array_entries("not an array").is_empty());
    }

    /// The SLO gate: a p99 blow-up past the threshold and floor fails, a
    /// within-budget wiggle passes, a sub-floor jump is ignored as noise,
    /// series the baseline lacks are skipped with a note, and a baseline
    /// sharing nothing at all is reported as zero comparisons.
    #[test]
    fn gate_flags_regressions_and_skips_unknown_series() {
        let baseline = r#"[
          {"label":"old","figures":{"Store-hash":{"store":{"op_latency":{"put":{"count":5000,"p99_ns":30000,"p999_ns":100000}},"txn_retries":{"count":5000,"p99_ns":2},"shed_ops":0,"stm":{"timeouts":1}},"latency":{"p99_ns":1}}},"criterion":{}}
        ]"#;
        let series = |put: &str, shed: u64| {
            vec![(
                "Store-hash".to_string(),
                format!(
                    "{{\"store\":{{\"op_latency\":{{\"put\":{put}}},\
                     \"txn_retries\":{{\"count\":5000,\"p99_ns\":2}},\"shed_ops\":{shed},\
                     \"stm\":{{\"timeouts\":1}}}},\"latency\":{{\"p99_ns\":1}}}}"
                ),
            )]
        };
        let ok = series("{\"count\":5000,\"p99_ns\":35000,\"p999_ns\":110000}", 2);
        let (reg, _, compared) = gate_run(&ok, baseline, 100.0);
        assert!(reg.is_empty(), "within budget: {reg:?}");
        assert!(compared >= 5, "put quantiles + retries + counters compared");

        // p999 regresses 10x — caught, and the message names the path.
        let bad = series("{\"count\":5000,\"p99_ns\":30000,\"p999_ns\":1000000}", 0);
        let (reg, _, _) = gate_run(&bad, baseline, 100.0);
        assert_eq!(reg.len(), 1, "{reg:?}");
        assert!(reg[0].contains("op_latency/put/p999_ns"), "{}", reg[0]);

        // The same blow-up on an undersampled histogram is the max of a
        // handful of ops — one scheduler blip, not a regression.
        let undersampled = series("{\"count\":40,\"p99_ns\":30000,\"p999_ns\":9000000}", 0);
        let (reg, _, _) = gate_run(&undersampled, baseline, 100.0);
        assert!(reg.is_empty(), "low-count quantiles must not gate: {reg:?}");

        // A 10x jump that stays under the noise floor is not a regression.
        let noisy = series("{\"count\":5000,\"p99_ns\":90000,\"p999_ns\":100000}", 19);
        let (reg, _, _) = gate_run(&noisy, baseline, 100.0);
        assert!(reg.is_empty(), "sub-floor noise must not fire: {reg:?}");

        // Unknown series: skipped with a note, not failed.
        let new_series = vec![("Store-brandnew".to_string(), "{\"store\":null}".to_string())];
        let (reg, notes, compared) = gate_run(&new_series, baseline, 100.0);
        assert!(reg.is_empty());
        assert_eq!(compared, 0);
        assert!(notes.iter().any(|n| n.contains("no baseline")), "{notes:?}");

        // Counters past the floor and threshold fire too.
        let shedding = series("{\"count\":5000,\"p99_ns\":30000,\"p999_ns\":100000}", 500);
        let (reg, _, _) = gate_run(&shedding, baseline, 100.0);
        assert_eq!(reg.len(), 1, "{reg:?}");
        assert!(reg[0].contains("shed_ops"), "{}", reg[0]);
    }

    /// The gate picks the newest trajectory entry that actually carries
    /// the series — older runs with the series still anchor it after a
    /// run that lacked it entirely.
    #[test]
    fn gate_baseline_is_newest_entry_with_the_series() {
        let baseline = r#"[
          {"label":"older","figures":{"Store-hash":{"store":{"op_latency":{"put":{"count":5000,"p99_ns":1000,"p999_ns":1000}}},"latency":{}}},"criterion":{}},
          {"label":"newer","figures":{"Other":{"latency":{}}},"criterion":{}}
        ]"#;
        let current = vec![(
            "Store-hash".to_string(),
            r#"{"store":{"op_latency":{"put":{"count":5000,"p99_ns":900000,"p999_ns":900}}},"latency":{}}"#.to_string(),
        )];
        let (reg, _, compared) = gate_run(&current, baseline, 100.0);
        assert_eq!(compared, 2, "both quantiles found in the older entry");
        assert_eq!(reg.len(), 1, "p99 10x over the older anchor: {reg:?}");
    }

    #[test]
    fn trajectory_splice_appends_and_bootstraps() {
        let e1 = render_entry("base", &[("A".into(), "{\"x\":1}".into())], &[]);
        let t1 = splice_into_trajectory(None, &e1);
        assert!(t1.starts_with("[\n"));
        assert!(t1.trim_end().ends_with(']'));
        assert!(t1.contains("\"label\":\"base\""));
        assert!(t1.contains("\"A\":{\"x\":1}"));
        let e2 = render_entry(
            "next",
            &[],
            &[("leapstore/get/hash".into(), 77.6, 79.5, 20)],
        );
        let t2 = splice_into_trajectory(Some(&t1), &e2);
        assert_eq!(t2.matches("\"label\":").count(), 2, "both runs present");
        assert!(t2.contains("\"median_ns\":77.6"));
        assert_eq!(
            t2.matches('[').count() - t2.matches("\"shards\":[").count(),
            1
        );
        // Garbage starts fresh rather than corrupting the trajectory.
        let t3 = splice_into_trajectory(Some("not json"), &e1);
        assert!(t3.starts_with("[\n") && t3.trim_end().ends_with(']'));
    }
}
