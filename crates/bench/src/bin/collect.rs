//! Collector: parses benchmark output into a `BENCH_leapstore.json`
//! trajectory file, so successive runs accumulate a machine-readable
//! history (format documented in the repository README).
//!
//! ```text
//! collect [--label NAME] [--out FILE] [--check] [--require KEY]... [INPUT...]
//! ```
//!
//! Reads the given files (or stdin when none are given) and extracts:
//!
//! * `stats <series> <json>` lines, as emitted by the `leapstore` figures
//!   panel (`cargo run -p leap-bench --bin figures -- leapstore`);
//! * vendored-criterion result lines
//!   (`group/bench/param  X ns/iter (median)  Y ns/iter (mean)  n=N`), as
//!   emitted by `cargo bench --bench store`.
//!
//! Each invocation appends one run object to the output array (default
//! `BENCH_leapstore.json` in the current directory), creating the file
//! when missing. The stats JSON objects are passed through verbatim; no
//! JSON parser is needed on either side.
//!
//! `--check` is the CI schema gate: nothing is written; instead the run
//! fails (exit 1) when the input carries a malformed `stats` line, no
//! stats at all, or — with `--require KEY` (repeatable) — a stats object
//! missing a required `"KEY":` field.

use leap_bench::check::balanced_json_object;
use std::io::Read;

/// One `stats <series> <json>` line. Malformed JSON (unbalanced braces,
/// an unterminated string, trailing garbage) is refused: a bad line
/// appended verbatim would poison the whole `BENCH_leapstore.json` array
/// for every later run.
fn parse_stats_line(line: &str) -> Option<(String, String)> {
    let rest = line.strip_prefix("stats ")?;
    let (label, json) = rest.split_once(' ')?;
    let json = json.trim();
    if !(json.starts_with('{') && json.ends_with('}')) {
        return None;
    }
    if !balanced_json_object(json) {
        eprintln!("collect: refusing malformed stats line for '{label}'");
        return None;
    }
    Some((label.to_string(), json.to_string()))
}

/// One vendored-criterion result line:
/// `leapstore/get/hash  77.6 ns/iter (median)  79.5 ns/iter (mean)  n=20`.
fn parse_criterion_line(line: &str) -> Option<(String, f64, f64, u64)> {
    let t: Vec<&str> = line.split_whitespace().collect();
    if t.len() < 8 || !t[0].contains('/') || t[2] != "ns/iter" || t[3] != "(median)" {
        return None;
    }
    let median: f64 = t[1].parse().ok()?;
    let mean: f64 = t[4].parse().ok()?;
    let n: u64 = t.last()?.strip_prefix("n=")?.parse().ok()?;
    Some((t[0].to_string(), median, mean, n))
}

/// Renders one run entry from the parsed lines (pass-through JSON).
fn render_entry(
    label: &str,
    stats: &[(String, String)],
    bench: &[(String, f64, f64, u64)],
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"label\":\"{}\"", label.replace('"', "'")));
    out.push_str(",\"figures\":{");
    for (i, (series, json)) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", series.replace('"', "'"), json));
    }
    out.push_str("},\"criterion\":{");
    for (i, (id, median, mean, n)) in bench.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"median_ns\":{median},\"mean_ns\":{mean},\"samples\":{n}}}",
            id.replace('"', "'")
        ));
    }
    out.push_str("}}");
    out
}

/// Appends `entry` to the JSON array in `existing` (textual splice — the
/// file only ever holds what this tool wrote). Malformed or missing
/// content starts a fresh array.
fn splice_into_trajectory(existing: Option<&str>, entry: &str) -> String {
    if let Some(prev) = existing {
        let trimmed = prev.trim_end();
        if let Some(body) = trimmed.strip_suffix(']') {
            let body = body.trim_end();
            if body.ends_with('[') {
                return format!("{body}\n  {entry}\n]\n");
            }
            let body = body.strip_suffix(',').unwrap_or(body);
            return format!("{body},\n  {entry}\n]\n");
        }
    }
    format!("[\n  {entry}\n]\n")
}

/// The `--check` gate: every `stats` line well-formed, at least one
/// present, and every required key in every stats object. Returns the
/// failures, empty = pass.
fn check_input(text: &str, require: &[String]) -> Vec<String> {
    let mut failures = Vec::new();
    let mut stats = Vec::new();
    for line in text.lines() {
        if !line.starts_with("stats ") {
            continue;
        }
        match parse_stats_line(line) {
            Some(s) => stats.push(s),
            None => failures.push(format!("malformed stats line: {line}")),
        }
    }
    if stats.is_empty() {
        failures.push("no stats lines found in input".to_string());
    }
    for (series, json) in &stats {
        for key in require {
            if !json.contains(&format!("\"{key}\":")) {
                failures.push(format!("series '{series}' is missing required key '{key}'"));
            }
        }
    }
    failures
}

fn main() {
    let mut label = String::from("run");
    let mut out_path = String::from("BENCH_leapstore.json");
    let mut inputs: Vec<String> = Vec::new();
    let mut check = false;
    let mut require: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().unwrap_or_else(|| "run".into()),
            "--out" => out_path = it.next().unwrap_or(out_path),
            "--check" => check = true,
            "--require" => require.push(it.next().unwrap_or_default()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: collect [--label NAME] [--out FILE] [--check] [--require KEY]... [INPUT...]"
                );
                return;
            }
            other => inputs.push(other.to_string()),
        }
    }
    let mut text = String::new();
    if inputs.is_empty() {
        std::io::stdin()
            .read_to_string(&mut text)
            .expect("read stdin");
    } else {
        for path in &inputs {
            let content =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            text.push_str(&content);
            text.push('\n');
        }
    }
    if check {
        let failures = check_input(&text, &require);
        if failures.is_empty() {
            eprintln!("collect: check passed ({} required keys)", require.len());
            return;
        }
        for f in &failures {
            eprintln!("collect: check failed: {f}");
        }
        std::process::exit(1);
    }
    let mut stats = Vec::new();
    let mut bench = Vec::new();
    for line in text.lines() {
        if let Some(s) = parse_stats_line(line) {
            stats.push(s);
        } else if let Some(b) = parse_criterion_line(line) {
            bench.push(b);
        }
    }
    if stats.is_empty() && bench.is_empty() {
        eprintln!("collect: no `stats` or criterion lines found in input");
        std::process::exit(1);
    }
    let entry = render_entry(&label, &stats, &bench);
    let existing = std::fs::read_to_string(&out_path).ok();
    let updated = splice_into_trajectory(existing.as_deref(), &entry);
    std::fs::write(&out_path, &updated).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!(
        "collect: appended run '{label}' ({} figure series, {} criterion rows) -> {out_path}",
        stats.len(),
        bench.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lines_round_trip() {
        let (label, json) =
            parse_stats_line("stats Store-hash {\"store\":{\"shards\":[]},\"latency\":{}}")
                .expect("well-formed stats line");
        assert_eq!(label, "Store-hash");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(parse_stats_line("statsStore-hash {}").is_none());
        assert!(parse_stats_line("stats Store-hash notjson").is_none());
        assert!(parse_stats_line("== leapstore: title ==").is_none());
    }

    /// A malformed stats line must be refused, not appended — pass-through
    /// splicing would otherwise corrupt `BENCH_leapstore.json` for every
    /// later run.
    #[test]
    fn malformed_stats_lines_are_refused() {
        // Over-closed / under-closed braces that still satisfy the naive
        // starts-with/ends-with check.
        for bad in [
            "stats S {\"a\":1}}",             // extra closer
            "stats S {{\"a\":1}",             // extra opener
            "stats S {\"a\":[1,2}",           // bracket closed by brace
            "stats S {\"a\":\"un}",           // unterminated string
            "stats S {\"a\":1} {\"b\":2}",    // trailing second object
            "stats S {\"a\":1}]}",            // stray closers
            "stats S {\"a\":\"}\"} garbage}", // text after the object
            "stats S {\"日本\":1} {}",        // multibyte + trailing object
        ] {
            assert!(parse_stats_line(bad).is_none(), "{bad}");
        }
        // Well-formed objects — including braces inside strings, escaped
        // quotes, and multibyte characters (byte-offset regression: a
        // char-counted index once made these reject or panic) — pass.
        for good in [
            "stats S {}",
            "stats S {\"a\":{\"b\":[1,2,{}]},\"c\":\"}{\"}",
            "stats S {\"a\":\"esc\\\"}\"}",
            "stats S {\"label\":\"débit-日本\"}",
            "stats S {\"日\":{\"本\":[1]}}",
            "stats Store-reshard {\"store\":{\"shards\":[]},\"latency\":{}}",
        ] {
            assert!(parse_stats_line(good).is_some(), "{good}");
        }
        assert!(balanced_json_object("{\"x\":1}"));
        assert!(
            !balanced_json_object("[1,2]"),
            "top level must be an object"
        );
        assert!(!balanced_json_object(""));
    }

    #[test]
    fn criterion_lines_round_trip() {
        let (id, median, mean, n) = parse_criterion_line(
            "leapstore/multi_put_collide/range       10707.5 ns/iter (median)  10864.2 ns/iter (mean)  n=20",
        )
        .expect("well-formed criterion line");
        assert_eq!(id, "leapstore/multi_put_collide/range");
        assert!((median - 10707.5).abs() < 1e-9);
        assert!((mean - 10864.2).abs() < 1e-9);
        assert_eq!(n, 20);
        assert!(parse_criterion_line("   1024       12          14").is_none());
        assert!(parse_criterion_line("# scale=quick duration=1s").is_none());
    }

    /// The CI gate: malformed stats lines, an empty panel, or a missing
    /// required key each fail the check; a clean panel passes.
    #[test]
    fn check_mode_gates_on_shape_and_required_keys() {
        let good = "== title ==\nstats A {\"store\":{\"epoch\":1},\"latency\":{\"p999_ns\":9}}\n\
                    stats B {\"store\":null,\"latency\":{\"p999_ns\":3}}\n";
        assert!(check_input(good, &[]).is_empty());
        assert!(check_input(good, &["latency".into(), "p999_ns".into()]).is_empty());
        let missing = check_input(good, &["op_latency".into()]);
        assert_eq!(missing.len(), 2, "both series lack the key: {missing:?}");
        assert!(missing[0].contains("op_latency"));
        let broken = check_input("stats A {\"x\":1}}\n", &[]);
        assert!(broken.iter().any(|f| f.contains("malformed")), "{broken:?}");
        let empty = check_input("no stats here\n", &[]);
        assert!(empty.iter().any(|f| f.contains("no stats")), "{empty:?}");
    }

    #[test]
    fn trajectory_splice_appends_and_bootstraps() {
        let e1 = render_entry("base", &[("A".into(), "{\"x\":1}".into())], &[]);
        let t1 = splice_into_trajectory(None, &e1);
        assert!(t1.starts_with("[\n"));
        assert!(t1.trim_end().ends_with(']'));
        assert!(t1.contains("\"label\":\"base\""));
        assert!(t1.contains("\"A\":{\"x\":1}"));
        let e2 = render_entry(
            "next",
            &[],
            &[("leapstore/get/hash".into(), 77.6, 79.5, 20)],
        );
        let t2 = splice_into_trajectory(Some(&t1), &e2);
        assert_eq!(t2.matches("\"label\":").count(), 2, "both runs present");
        assert!(t2.contains("\"median_ns\":77.6"));
        assert_eq!(
            t2.matches('[').count() - t2.matches("\"shards\":[").count(),
            1
        );
        // Garbage starts fresh rather than corrupting the trajectory.
        let t3 = splice_into_trajectory(Some("not json"), &e1);
        assert!(t3.starts_with("[\n") && t3.trim_end().ends_with(']'));
    }
}
