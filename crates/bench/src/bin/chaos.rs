//! Deterministic chaos driver: one seeded run of a mixed workload against
//! a [`leap_store::LeapStore`] with **every fault point armed** —
//! injected stm commit/validation aborts, failing migration chunks, shed
//! batcher drains and rebalancer-tick panics — then a convergence and
//! model-equivalence check.
//!
//! ```text
//! chaos [--seed N] [--ops N] [--shards N]
//! ```
//!
//! The run is fully deterministic in `--seed` (workload and fault
//! schedule both derive from it). On success it prints the injector's
//! per-point visit/fire report and the store stats JSON; on divergence
//! it prints the failing seed and exits 1, so CI failures are replayable
//! verbatim.

use leap_bench::rng::Rng64;
use leap_store::{
    AbortOutcome, Batcher, FaultPlan, FaultPoint, LeapStore, Partitioning, RebalancePolicy,
    RetryPolicy, StoreConfig, StoreError,
};
use std::collections::BTreeMap;
use std::sync::Arc;

const KEY_SPACE: u64 = 100_000;

fn plan_for(seed: u64) -> FaultPlan {
    // Rates are parts-per-million; budgets bound every point so the tail
    // of the run (and the final convergence pass) always terminates.
    FaultPlan::new(seed)
        .with_rate(FaultPoint::StmCommit, 5_000)
        .with_budget(FaultPoint::StmCommit, 500)
        .with_rate(FaultPoint::StmValidate, 5_000)
        .with_budget(FaultPoint::StmValidate, 500)
        .with_rate(FaultPoint::MigrationChunk, 100_000)
        .with_budget(FaultPoint::MigrationChunk, 200)
        .with_rate(FaultPoint::BatcherDrain, 50_000)
        .with_budget(FaultPoint::BatcherDrain, 200)
}

fn run(seed: u64, ops: u64, shards: usize) -> Result<(), String> {
    let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(
        StoreConfig::new(shards, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_rebalancing(RebalancePolicy {
                chunk: 64,
                watchdog_stalls: 4,
                ..RebalancePolicy::default()
            })
            .with_faults(plan_for(seed)),
    ));
    let batcher = Batcher::new(store.clone()).with_admission(64);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = Rng64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let policy = RetryPolicy::default().max_attempts(64);
    let (mut shed, mut timeouts, mut aborts) = (0u64, 0u64, 0u64);
    for i in 0..ops {
        let key = rng.next_u64() % KEY_SPACE;
        let val = rng.next_u64();
        match rng.next_u64() % 100 {
            // Plain ops ride the store's internal (unbounded) retry: an
            // injected stm fault costs a retry, never an outcome.
            0..=34 => {
                let prev = store.put(key, val);
                if model.insert(key, val) != prev {
                    return Err(format!("put({key}) returned a stale previous value"));
                }
            }
            35..=54 => {
                if store.get(key) != model.get(&key).copied() {
                    return Err(format!("get({key}) diverged from the model"));
                }
            }
            55..=64 => {
                let prev = store.delete(key);
                if model.remove(&key) != prev {
                    return Err(format!("delete({key}) returned a stale value"));
                }
            }
            // Batched ops degrade gracefully: a shed drain reports
            // Overloaded and the op provably did not run.
            65..=79 => match batcher.try_put(key, val) {
                Ok(prev) => {
                    if model.insert(key, val) != prev {
                        return Err(format!("batched put({key}) stale previous value"));
                    }
                }
                Err(StoreError::Overloaded { .. }) => shed += 1,
                Err(e) => return Err(format!("unexpected batcher error: {e}")),
            },
            // Bounded ops trade livelock for a typed Timeout; nothing
            // commits on the timeout path, so the model is untouched.
            80..=89 => match store.put_within(key, val, policy) {
                Ok(prev) => {
                    if model.insert(key, val) != prev {
                        return Err(format!("bounded put({key}) stale previous value"));
                    }
                }
                Err(StoreError::Timeout { .. }) => timeouts += 1,
                Err(e) => return Err(format!("unexpected bounded-op error: {e}")),
            },
            _ => {
                let hi = (key + 1 + rng.next_u64() % 512).min(KEY_SPACE - 1);
                let got = store.range(key, hi);
                let want: Vec<(u64, u64)> = model.range(key..=hi).map(|(k, v)| (*k, *v)).collect();
                if got != want {
                    return Err(format!("range({key}, {hi}) diverged from the model"));
                }
            }
        }
        // Drive resharding (and its injected chunk failures / watchdog
        // aborts) from the same deterministic loop.
        if i % 64 == 0 {
            store.rebalance_step();
        }
        // Occasionally abort whatever migration is in flight: rollback
        // and forward completion are both legal resolutions.
        if i % 4096 == 2048 {
            if let Some(m) = store.router().migration() {
                match store.abort_migration(m.id) {
                    Ok(AbortOutcome::RolledBack { .. }) => aborts += 1,
                    Ok(AbortOutcome::Completed { .. }) | Err(_) => {}
                }
            }
        }
    }
    // Convergence: every migration resolves (the chunk-fault budget is
    // finite, and the watchdog aborts anything that stays stuck).
    store.rebalance_until_idle();
    if !store.router().migrations().is_empty() {
        return Err("migrations still in flight after rebalance_until_idle".into());
    }
    let got = store.range(0, KEY_SPACE - 1);
    let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    if got != want {
        return Err(format!(
            "final state diverged: store holds {} keys, model {}",
            got.len(),
            want.len()
        ));
    }
    let stats = store.stats();
    println!(
        "chaos: converged — {} keys, epoch {}, {} migrations completed, {} aborted",
        store.len(),
        stats.epoch,
        stats.migrations_completed,
        stats.aborted_migrations
    );
    println!("chaos: driver-observed shed={shed} timeouts={timeouts} manual_aborts={aborts}");
    if let Some(inj) = store.faults() {
        for (name, visits, fires) in inj.report() {
            println!("fault {name}: visits={visits} fires={fires}");
        }
    }
    println!("stats chaos {}", stats.to_json());
    Ok(())
}

fn main() {
    let mut seed = 1u64;
    let mut ops = 50_000u64;
    let mut shards = 4usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("chaos: {what} needs a numeric argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--seed" => seed = grab("--seed"),
            "--ops" => ops = grab("--ops"),
            "--shards" => shards = grab("--shards").max(1) as usize,
            "--help" | "-h" => {
                eprintln!("usage: chaos [--seed N] [--ops N] [--shards N]");
                return;
            }
            other => {
                eprintln!("chaos: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    println!("chaos: seed={seed} ops={ops} shards={shards}");
    if let Err(why) = run(seed, ops, shards) {
        eprintln!("chaos seed {seed} failed: {why}");
        std::process::exit(1);
    }
}
