//! CLI that regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! figures [--scale quick|medium|paper] [all | fig14a fig14b fig15a fig15b
//!          fig16a fig16b fig17a fig17b fig17c fig17d fig17 | leapstore |
//!          memdb]
//! ```
//!
//! The `leapstore` and `memdb` panels additionally emit one
//! `stats <series> <json>` line per series with per-op latency
//! percentiles plus (for store-backed series) shard-level operation
//! counts and the shared domain's abort rate, for `BENCH_*.json`
//! post-processing.

use leap_bench::figures as f;
use leap_bench::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::medium();
    let mut panels: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let name = it.next().unwrap_or_default();
                scale = Scale::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (quick|medium|paper)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--scale quick|medium|paper] [all|fig14a|...|fig17d|fig17]"
                );
                return;
            }
            other => panels.push(other.to_string()),
        }
    }
    if panels.is_empty() {
        panels.push("all".to_string());
    }
    eprintln!(
        "# scale={} duration={:?} repeats={} threads={:?} (host cores: {})",
        scale.name,
        scale.duration,
        scale.repeats,
        scale.threads,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    for panel in panels {
        match panel.as_str() {
            "all" => {
                print!("{}", f::fig14a(&scale).to_table());
                print!("{}", f::fig14b(&scale).to_table());
                print!("{}", f::fig15a(&scale).to_table());
                print!("{}", f::fig15b(&scale).to_table());
                print!("{}", f::fig16a(&scale).to_table());
                print!("{}", f::fig16b(&scale).to_table());
                for fig in f::fig17_all(&scale) {
                    print!("{}", fig.to_table());
                }
                print!("{}", f::leapstore(&scale).to_table());
                print!("{}", f::memdb(&scale).to_table());
            }
            "fig14a" => print!("{}", f::fig14a(&scale).to_table()),
            "fig14b" => print!("{}", f::fig14b(&scale).to_table()),
            "fig15a" => print!("{}", f::fig15a(&scale).to_table()),
            "fig15b" => print!("{}", f::fig15b(&scale).to_table()),
            "fig16a" => print!("{}", f::fig16a(&scale).to_table()),
            "fig16b" => print!("{}", f::fig16b(&scale).to_table()),
            "fig17a" => print!("{}", f::fig17a(&scale).to_table()),
            "fig17b" => print!("{}", f::fig17b(&scale).to_table()),
            "fig17c" => print!("{}", f::fig17c(&scale).to_table()),
            "fig17d" => print!("{}", f::fig17d(&scale).to_table()),
            "fig17" => {
                for fig in f::fig17_all(&scale) {
                    print!("{}", fig.to_table());
                }
            }
            "leapstore" => print!("{}", f::leapstore(&scale).to_table()),
            "memdb" => print!("{}", f::memdb(&scale).to_table()),
            other => {
                eprintln!("unknown panel '{other}'");
                std::process::exit(2);
            }
        }
    }
}
