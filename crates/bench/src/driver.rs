//! Timed multi-thread throughput driver: the measurement loop behind every
//! figure (paper §3: "Each experiment execution is set to 10 seconds, and
//! is repeated three times; we show the average").

use crate::rng::Rng64;
use crate::target::BenchTarget;
use crate::workload::{OpKind, Workload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One timed run's configuration.
#[derive(Debug, Clone)]
pub struct RunCfg {
    /// Worker thread count.
    pub threads: usize,
    /// Measured duration per repetition.
    pub duration: Duration,
    /// Number of repetitions averaged.
    pub repeats: usize,
    /// Base RNG seed (each thread derives its own).
    pub seed: u64,
}

impl Default for RunCfg {
    fn default() -> Self {
        RunCfg {
            threads: 1,
            duration: Duration::from_millis(300),
            repeats: 1,
            seed: 0xC0FF_EE00,
        }
    }
}

/// Runs the workload against the target and returns average throughput in
/// operations per second (one composite modification = one operation).
pub fn run_throughput(target: &Arc<dyn BenchTarget>, wl: &Workload, cfg: &RunCfg) -> f64 {
    let mut total = 0.0;
    for rep in 0..cfg.repeats {
        total += run_once(target, wl, cfg, cfg.seed ^ (rep as u64) << 32);
    }
    total / cfg.repeats as f64
}

fn run_once(target: &Arc<dyn BenchTarget>, wl: &Workload, cfg: &RunCfg, seed: u64) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let lists = target.lists();
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let target = target.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let wl = wl.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng64::new(seed.wrapping_add(t as u64 * 0x9E37_79B9_7F4A_7C15));
            let mut keys = vec![0u64; lists];
            let mut values = vec![0u64; lists];
            let mut ops = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                // Batch the stop check to keep it off the hot path.
                for _ in 0..32 {
                    match wl.sample_kind(&mut rng) {
                        OpKind::Update => {
                            wl.sample_batch_keys(&mut rng, &mut keys);
                            for v in values.iter_mut() {
                                *v = rng.next_u64();
                            }
                            target.update(&keys, &values);
                        }
                        OpKind::Remove => {
                            wl.sample_batch_keys(&mut rng, &mut keys);
                            target.remove(&keys);
                        }
                        OpKind::Lookup => {
                            let list = rng.below(lists as u64) as usize;
                            let k = wl.sample_key(&mut rng);
                            std::hint::black_box(target.lookup(list, k));
                        }
                        OpKind::RangeQuery => {
                            let list = rng.below(lists as u64) as usize;
                            let (lo, hi) = wl.sample_range(&mut rng);
                            std::hint::black_box(target.range_query(list, lo, hi));
                        }
                    }
                    ops += 1;
                }
            }
            ops
        }));
    }
    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut ops = 0u64;
    for h in handles {
        ops += h.join().expect("worker panicked");
    }
    let elapsed = started.elapsed().as_secs_f64();
    ops as f64 / elapsed
}

/// Per-operation latency percentiles (nanoseconds), measured by sampling
/// one in every 16 operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile (the tail the event timeline explains).
    pub p999_ns: u64,
    /// Arithmetic mean of the samples.
    pub mean_ns: u64,
    /// Number of latency samples taken.
    pub samples: usize,
}

impl std::fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50={}ns p95={}ns p99={}ns p99.9={}ns mean={}ns (n={})",
            self.p50_ns, self.p95_ns, self.p99_ns, self.p999_ns, self.mean_ns, self.samples
        )
    }
}

/// Like [`run_throughput`] but additionally samples per-operation
/// latencies (1/16 of operations, to keep the probe off the hot path) and
/// reports percentiles across all threads and repetitions.
pub fn run_latency(target: &Arc<dyn BenchTarget>, wl: &Workload, cfg: &RunCfg) -> LatencyReport {
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let lists = target.lists();
    let mut handles = Vec::with_capacity(cfg.threads);
    for t in 0..cfg.threads {
        let target = target.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let wl = wl.clone();
        let seed = cfg.seed.wrapping_add(t as u64 * 0x9E37_79B9_7F4A_7C15);
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng64::new(seed);
            let mut keys = vec![0u64; lists];
            let mut values = vec![0u64; lists];
            let mut lat = Vec::with_capacity(1 << 14);
            let mut i = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..16 {
                    i += 1;
                    let probe = i.is_multiple_of(16);
                    let start = probe.then(Instant::now);
                    match wl.sample_kind(&mut rng) {
                        OpKind::Update => {
                            wl.sample_batch_keys(&mut rng, &mut keys);
                            for v in values.iter_mut() {
                                *v = rng.next_u64();
                            }
                            target.update(&keys, &values);
                        }
                        OpKind::Remove => {
                            wl.sample_batch_keys(&mut rng, &mut keys);
                            target.remove(&keys);
                        }
                        OpKind::Lookup => {
                            let list = rng.below(lists as u64) as usize;
                            let k = wl.sample_key(&mut rng);
                            std::hint::black_box(target.lookup(list, k));
                        }
                        OpKind::RangeQuery => {
                            let list = rng.below(lists as u64) as usize;
                            let (lo, hi) = wl.sample_range(&mut rng);
                            std::hint::black_box(target.range_query(list, lo, hi));
                        }
                    }
                    if let Some(s) = start {
                        lat.push(s.elapsed().as_nanos() as u64);
                    }
                }
            }
            lat
        }));
    }
    barrier.wait();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<u64> = Vec::new();
    for h in handles {
        all.extend(h.join().expect("worker panicked"));
    }
    all.sort_unstable();
    let pick = |q: f64| -> u64 {
        if all.is_empty() {
            0
        } else {
            all[((all.len() - 1) as f64 * q) as usize]
        }
    };
    let mean = if all.is_empty() {
        0
    } else {
        all.iter().sum::<u64>() / all.len() as u64
    };
    LatencyReport {
        p50_ns: pick(0.50),
        p95_ns: pick(0.95),
        p99_ns: pick(0.99),
        p999_ns: pick(0.999),
        mean_ns: mean,
        samples: all.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{make_target, Algo};
    use crate::workload::Mix;
    use leaplist::Params;

    #[test]
    fn driver_measures_positive_throughput() {
        let t = make_target(
            Algo::LeapLt,
            2,
            Params {
                node_size: 16,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
        );
        t.prefill(500);
        let wl = Workload {
            mix: Mix::read_dominated(),
            key_range: 1_000,
            span_min: 10,
            span_max: 50,
            key_dist: Default::default(),
            batch_keys: Default::default(),
        };
        let cfg = RunCfg {
            threads: 2,
            duration: Duration::from_millis(60),
            repeats: 1,
            seed: 7,
        };
        let ops = run_throughput(&t, &wl, &cfg);
        assert!(ops > 100.0, "implausibly low throughput: {ops}");
    }

    #[test]
    fn driver_works_for_skiplist_targets() {
        let t = make_target(Algo::SkipCas, 1, Params::default());
        t.prefill(200);
        let wl = Workload {
            mix: Mix::write_only(),
            key_range: 500,
            span_min: 10,
            span_max: 20,
            key_dist: Default::default(),
            batch_keys: Default::default(),
        };
        let cfg = RunCfg {
            threads: 2,
            duration: Duration::from_millis(50),
            repeats: 1,
            seed: 3,
        };
        assert!(run_throughput(&t, &wl, &cfg) > 100.0);
    }

    #[test]
    fn latency_report_has_ordered_percentiles() {
        let t = make_target(Algo::LeapLt, 1, Params::default());
        t.prefill(500);
        let wl = Workload::paper(Mix::lookup_only(), 500);
        let cfg = RunCfg {
            threads: 1,
            duration: Duration::from_millis(80),
            repeats: 1,
            seed: 11,
        };
        let r = run_latency(&t, &wl, &cfg);
        assert!(r.samples > 10, "too few samples: {r}");
        assert!(
            r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns && r.p99_ns <= r.p999_ns,
            "{r}"
        );
        assert!(r.mean_ns > 0);
    }

    #[test]
    fn driver_runs_leapstore_mixed_scenario() {
        // The LeapStore service scenario: point gets, cross-shard ranges,
        // and multi-shard transactions, against the sharded store target.
        let t = make_target(
            Algo::LeapStore,
            4,
            Params {
                node_size: 16,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
        );
        t.prefill(500);
        let wl = Workload {
            mix: Mix::store_mixed(),
            key_range: 1_000,
            span_min: 10,
            span_max: 50,
            key_dist: Default::default(),
            batch_keys: Default::default(),
        };
        let cfg = RunCfg {
            threads: 2,
            duration: Duration::from_millis(60),
            repeats: 1,
            seed: 23,
        };
        assert!(run_throughput(&t, &wl, &cfg) > 100.0);
        let json = t.stats_json().expect("store target exposes stats");
        assert!(
            json.contains("\"stm\""),
            "stats carry domain counters: {json}"
        );
    }

    #[test]
    fn colliding_workload_drives_collision_batches() {
        // Adjacent-key batches on range partitioning: essentially every
        // multi-shard txn collides onto one shard, exercising the
        // multi-op chain-rebuild path end to end.
        let t = crate::target::make_store_target(
            4,
            leap_store::Partitioning::Range,
            1_000,
            Params {
                node_size: 16,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
        );
        t.prefill(500);
        let wl = Workload::colliding(Mix::write_only(), 1_000);
        let cfg = RunCfg {
            threads: 2,
            duration: Duration::from_millis(60),
            repeats: 1,
            seed: 17,
        };
        assert!(run_throughput(&t, &wl, &cfg) > 100.0);
        let json = t.stats_json().expect("store target exposes stats");
        let collisions: u64 = json
            .split("\"collision_batches\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse().ok())
            .expect("stats carry collision_batches");
        assert!(collisions > 0, "adjacent keys must collide: {json}");
    }

    #[test]
    fn zipfian_workload_runs() {
        let t = make_target(Algo::LeapLt, 1, Params::default());
        t.prefill(1_000);
        let wl = Workload::zipfian(Mix::read_dominated(), 1_000, 0.99);
        let cfg = RunCfg {
            threads: 2,
            duration: Duration::from_millis(60),
            repeats: 1,
            seed: 5,
        };
        assert!(run_throughput(&t, &wl, &cfg) > 100.0);
    }
}
