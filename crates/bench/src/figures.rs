//! Parameter sweeps reproducing every panel of the paper's evaluation
//! (Figures 14-17). Each function returns a [`Figure`] whose series carry
//! the same labels and x-axes as the published plots.

use crate::driver::{run_throughput, RunCfg};
use crate::scale::Scale;
use crate::target::{
    make_memdb_target, make_reshard_store_target, make_snapshot_store_target, make_store_target,
    make_target, Algo, BenchTarget,
};
use crate::workload::{Mix, Workload};
use leap_store::Partitioning;
use leaplist::Params;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One plotted line.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (paper naming).
    pub label: &'static str,
    /// `(x, ops/sec)` points.
    pub points: Vec<(f64, f64)>,
}

/// One figure panel.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Panel id, e.g. `fig14a`.
    pub id: &'static str,
    /// Human title including the workload description.
    pub title: String,
    /// X axis meaning.
    pub x_label: &'static str,
    /// The plotted lines.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the panel as an aligned text table (one row per x value).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!("{:>14}", s.label));
        }
        out.push('\n');
        let rows = self.series.first().map_or(0, |s| s.points.len());
        for r in 0..rows {
            out.push_str(&format!("{:>12}", format_x(self.series[0].points[r].0)));
            for s in &self.series {
                out.push_str(&format!("{:>14}", format_ops(s.points[r].1)));
            }
            out.push('\n');
        }
        out
    }
}

fn format_x(x: f64) -> String {
    if x >= 1000.0 {
        format!("{}", x as u64)
    } else {
        format!("{x}")
    }
}

fn format_ops(v: f64) -> String {
    format!("{:.0}", v)
}

/// The paper's structure settings: node size 300, max level 10.
pub fn paper_params() -> Params {
    Params::default()
}

fn cfg(scale: &Scale, threads: usize) -> RunCfg {
    RunCfg {
        threads,
        duration: scale.duration,
        repeats: scale.repeats,
        seed: 0x1EA9_115D,
    }
}

/// Sweeps thread counts for a set of algorithms on one workload,
/// prefilling each algorithm's structure once and reusing it across the
/// sweep (updates and removes balance, so the population stays near its
/// initial size).
#[allow(clippy::too_many_arguments)] // one parameter per figure knob
fn sweep_threads(
    id: &'static str,
    title: String,
    algos: &[Algo],
    lists: usize,
    elements: u64,
    key_range: u64,
    mix: Mix,
    scale: &Scale,
) -> Figure {
    let wl = Workload::paper(mix, key_range);
    let mut series = Vec::new();
    for &algo in algos {
        let target = make_target(algo, lists, paper_params());
        target.prefill(elements);
        let mut points = Vec::new();
        for &t in &scale.threads {
            let ops = run_throughput(&target, &wl, &cfg(scale, t));
            points.push((t as f64, ops));
        }
        series.push(Series {
            label: algo.label(),
            points,
        });
    }
    Figure {
        id,
        title,
        x_label: "threads",
        series,
    }
}

/// Fig. 14(a): four Leap-List variants, L=4 lists of 100k elements, 100%
/// modifications, thread sweep.
pub fn fig14a(scale: &Scale) -> Figure {
    sweep_threads(
        "fig14a",
        format!(
            "100% modify, L=4 lists, {} elements ({})",
            scale.elements, scale.name
        ),
        &Algo::leap_variants(),
        4,
        scale.elements,
        scale.elements.max(2),
        Mix::write_only(),
        scale,
    )
}

/// Fig. 14(b): 40% lookup / 40% range-query / 20% modify, thread sweep.
pub fn fig14b(scale: &Scale) -> Figure {
    sweep_threads(
        "fig14b",
        format!(
            "40% lookup, 40% range-query, 20% modify, L=4, {} elements ({})",
            scale.elements, scale.name
        ),
        &Algo::leap_variants(),
        4,
        scale.elements,
        scale.elements.max(2),
        Mix::read_dominated(),
        scale,
    )
}

/// Sweeps initial element counts at a fixed thread count (Fig. 15).
fn sweep_elements(id: &'static str, title: String, mix: Mix, scale: &Scale) -> Figure {
    let mut series: Vec<Series> = Algo::leap_variants()
        .iter()
        .map(|a| Series {
            label: a.label(),
            points: Vec::new(),
        })
        .collect();
    for &elements in &scale.element_sweep {
        let wl = Workload::paper(mix, elements.max(2));
        for (si, &algo) in Algo::leap_variants().iter().enumerate() {
            let target = make_target(algo, 4, paper_params());
            target.prefill(elements);
            let ops = run_throughput(&target, &wl, &cfg(scale, scale.fixed_threads));
            series[si].points.push((elements as f64, ops));
        }
    }
    Figure {
        id,
        title,
        x_label: "elements",
        series,
    }
}

/// Fig. 15(a): element sweep, 100% modifications, fixed threads.
pub fn fig15a(scale: &Scale) -> Figure {
    sweep_elements(
        "fig15a",
        format!(
            "100% modify, {} threads, element sweep ({})",
            scale.fixed_threads, scale.name
        ),
        Mix::write_only(),
        scale,
    )
}

/// Fig. 15(b): element sweep, 100% lookups, fixed threads.
pub fn fig15b(scale: &Scale) -> Figure {
    sweep_elements(
        "fig15b",
        format!(
            "100% lookup, {} threads, element sweep ({})",
            scale.fixed_threads, scale.name
        ),
        Mix::lookup_only(),
        scale,
    )
}

/// Sweeps the read percentage (Fig. 16): x% of `read_kind`, the rest
/// modifications.
fn sweep_read_pct(
    id: &'static str,
    title: String,
    range_not_lookup: bool,
    scale: &Scale,
) -> Figure {
    let mut series: Vec<Series> = Algo::leap_variants()
        .iter()
        .map(|a| Series {
            label: a.label(),
            points: Vec::new(),
        })
        .collect();
    for (si, &algo) in Algo::leap_variants().iter().enumerate() {
        let target = make_target(algo, 4, paper_params());
        target.prefill(scale.elements);
        for pct in (0..=90).step_by(10) {
            let mix = if range_not_lookup {
                Mix::new(0, pct, 100 - pct)
            } else {
                Mix::new(pct, 0, 100 - pct)
            };
            let wl = Workload::paper(mix, scale.elements.max(2));
            let ops = run_throughput(&target, &wl, &cfg(scale, scale.fixed_threads));
            series[si].points.push((pct as f64, ops));
        }
    }
    Figure {
        id,
        title,
        x_label: if range_not_lookup {
            "range-query %"
        } else {
            "lookup %"
        },
        series,
    }
}

/// Fig. 16(a): lookup% from 0 to 90 (no range queries), rest modify.
pub fn fig16a(scale: &Scale) -> Figure {
    sweep_read_pct(
        "fig16a",
        format!(
            "{} threads, {} elements, 0% range-query ({})",
            scale.fixed_threads, scale.elements, scale.name
        ),
        false,
        scale,
    )
}

/// Fig. 16(b): range-query% from 0 to 90 (no lookups), rest modify.
pub fn fig16b(scale: &Scale) -> Figure {
    sweep_read_pct(
        "fig16b",
        format!(
            "{} threads, {} elements, 0% lookup ({})",
            scale.fixed_threads, scale.elements, scale.name
        ),
        true,
        scale,
    )
}

fn fig17_panel(
    id: &'static str,
    mix: Mix,
    mix_name: &str,
    scale: &Scale,
    prefilled: &[(Algo, Arc<dyn BenchTarget>)],
) -> Figure {
    let wl = Workload::paper(mix, scale.fig17_elements.max(2));
    let mut series = Vec::new();
    for (algo, target) in prefilled {
        let mut points = Vec::new();
        for &t in &scale.threads {
            let ops = run_throughput(target, &wl, &cfg(scale, t));
            points.push((t as f64, ops));
        }
        series.push(Series {
            label: algo.label(),
            points,
        });
    }
    Figure {
        id,
        title: format!(
            "{mix_name}, single list, {} elements ({})",
            scale.fig17_elements, scale.name
        ),
        x_label: "threads",
        series,
    }
}

/// Prefills the three Fig. 17 structures (shared across the four panels).
fn fig17_targets(scale: &Scale) -> Vec<(Algo, Arc<dyn BenchTarget>)> {
    Algo::skiplist_comparison()
        .iter()
        .map(|&algo| {
            let t = make_target(algo, 1, paper_params());
            t.prefill(scale.fig17_elements);
            (algo, t)
        })
        .collect()
}

/// Fig. 17(a): 100% modify, Leap-LT vs the skip-list baselines.
pub fn fig17a(scale: &Scale) -> Figure {
    fig17_panel(
        "fig17a",
        Mix::write_only(),
        "100% modify",
        scale,
        &fig17_targets(scale),
    )
}

/// Fig. 17(b): 40% lookup / 40% range-query / 20% modify.
pub fn fig17b(scale: &Scale) -> Figure {
    fig17_panel(
        "fig17b",
        Mix::read_dominated(),
        "40% lookup, 40% range-query, 20% modify",
        scale,
        &fig17_targets(scale),
    )
}

/// Fig. 17(c): 100% lookup.
pub fn fig17c(scale: &Scale) -> Figure {
    fig17_panel(
        "fig17c",
        Mix::lookup_only(),
        "100% lookup",
        scale,
        &fig17_targets(scale),
    )
}

/// Fig. 17(d): 100% range-query — the paper's headline panel.
pub fn fig17d(scale: &Scale) -> Figure {
    fig17_panel(
        "fig17d",
        Mix::range_only(),
        "100% range-query",
        scale,
        &fig17_targets(scale),
    )
}

/// A figure panel plus per-series machine-readable statistics lines —
/// the LeapStore extension output: `crates/bench/src/bin/collect.rs`
/// parses the `stats` entries into `BENCH_leapstore.json` to track
/// shard-level op counts, abort rates and latency percentiles.
#[derive(Debug, Clone)]
pub struct StoreFigure {
    /// Throughput sweep (threads on x, one series per store scenario).
    pub figure: Figure,
    /// `(series label, stats JSON object)` captured after each series'
    /// sweep finished; the JSON carries the store's per-shard op counters
    /// and commit/abort counters (`"store"`) plus per-op latency
    /// percentiles sampled at the fixed thread count (`"latency"`).
    pub stats: Vec<(&'static str, String)>,
}

impl StoreFigure {
    /// The throughput table followed by one `stats <label> <json>` line
    /// per series (grep-able by benchmark post-processing).
    pub fn to_table(&self) -> String {
        let mut out = self.figure.to_table();
        for (label, json) in &self.stats {
            out.push_str(&format!("stats {label} {json}\n"));
        }
        out
    }
}

/// One scenario of a stats-carrying panel: its legend label, the (not
/// yet prefilled) target, the workload, and whether a background
/// rebalance driver runs for the whole measurement.
struct StatScenario {
    label: &'static str,
    target: Arc<dyn BenchTarget>,
    workload: Workload,
    reshard: bool,
}

/// The shared measurement protocol of the stats-carrying panels
/// (`leapstore`, `memdb`): prefill each scenario's target, optionally run
/// a background rebalance driver across the whole measurement (thread
/// sweep **and** latency pass), sweep throughput over the scale's thread
/// counts, snapshot the target's counters **before** the latency pass
/// (so the recorded op counts and abort rate describe the sweep alone),
/// then sample p50/p95/p99/p99.9 per-op latency at the fixed thread
/// count. Targets without a stats surface record `"store":null`.
fn sweep_stat_scenarios(
    id: &'static str,
    title: String,
    scenarios: Vec<StatScenario>,
    scale: &Scale,
) -> StoreFigure {
    let mut series = Vec::new();
    let mut stats = Vec::new();
    for sc in scenarios {
        sc.target.prefill(scale.elements);
        let stop = Arc::new(AtomicBool::new(false));
        let driver = sc.reshard.then(|| {
            let (t, stop) = (sc.target.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if !t.rebalance_step() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            })
        });
        let mut points = Vec::new();
        for &t in &scale.threads {
            let ops = run_throughput(&sc.target, &sc.workload, &cfg(scale, t));
            points.push((t as f64, ops));
        }
        let store_json = sc.target.stats_json().unwrap_or_else(|| "null".into());
        let lat =
            crate::driver::run_latency(&sc.target, &sc.workload, &cfg(scale, scale.fixed_threads));
        stop.store(true, Ordering::Relaxed);
        if let Some(d) = driver {
            d.join().expect("rebalance driver panicked");
        }
        series.push(Series {
            label: sc.label,
            points,
        });
        stats.push((
            sc.label,
            leap_obs::Json::obj()
                // The target's own snapshot, already rendered (or the
                // literal `null` for targets without a stats surface).
                .field("store", leap_obs::Json::raw(store_json))
                .field(
                    "latency",
                    leap_obs::Json::obj()
                        .field("p50_ns", leap_obs::Json::U64(lat.p50_ns))
                        .field("p95_ns", leap_obs::Json::U64(lat.p95_ns))
                        .field("p99_ns", leap_obs::Json::U64(lat.p99_ns))
                        .field("p999_ns", leap_obs::Json::U64(lat.p999_ns))
                        .field("mean_ns", leap_obs::Json::U64(lat.mean_ns))
                        .field("samples", leap_obs::Json::U64(lat.samples as u64)),
                )
                .render(),
        ));
    }
    StoreFigure {
        figure: Figure {
            id,
            title,
            x_label: "threads",
            series,
        },
        stats,
    }
}

/// LeapStore extension panel: the store scenario ([`Mix::store_mixed`] —
/// gets, cross-shard ranges, multi-shard transactions) swept over threads
/// for both partitioning modes, under uniform and zipfian (θ = 0.99) key
/// distributions, plus the `batch_collide` scenario (adjacent-key batches
/// on range partitioning: nearly every transaction piles its keys onto
/// one shard, the multi-op chain-rebuild path), plus `Store-reshard`
/// (zipfian load on range partitioning **with a background rebalancer**
/// splitting the hot shard and merging cold pairs mid-measurement), plus
/// `Store-scan-snapshot` (a write-heavy zipfian mix with doubled scan
/// spans where every range query is a **pinned-timestamp paged scan**
/// through the version bundles, racing the same background rebalancer —
/// the series whose flat scan tail the SLO gate watches). Each series
/// additionally captures p50/p95/p99 per-op latency at the fixed thread
/// count.
pub fn leapstore(scale: &Scale) -> StoreFigure {
    let shards = 4;
    let key_space = scale.elements.max(2);
    let mix = Mix::store_mixed();
    // Write-heavy with a large scan share and doubled spans: long pinned
    // scans must hold their snapshot while most threads commit against it.
    let long_scans = {
        let mut w = Workload::zipfian(Mix::new(10, 30, 60), key_space, 0.99);
        w.span_min *= 2;
        w.span_max *= 2;
        w
    };
    let scenarios: [(&'static str, Partitioning, Workload, bool, bool); 7] = [
        (
            "Store-hash",
            Partitioning::Hash,
            Workload::paper(mix, key_space),
            false,
            false,
        ),
        (
            "Store-range",
            Partitioning::Range,
            Workload::paper(mix, key_space),
            false,
            false,
        ),
        (
            "Store-hash-zipf",
            Partitioning::Hash,
            Workload::zipfian(mix, key_space, 0.99),
            false,
            false,
        ),
        (
            "Store-range-zipf",
            Partitioning::Range,
            Workload::zipfian(mix, key_space, 0.99),
            false,
            false,
        ),
        (
            "Store-collide",
            Partitioning::Range,
            Workload::colliding(mix, key_space),
            false,
            false,
        ),
        (
            "Store-reshard",
            Partitioning::Range,
            Workload::zipfian(mix, key_space, 0.99),
            true,
            false,
        ),
        (
            "Store-scan-snapshot",
            Partitioning::Range,
            long_scans,
            true,
            true,
        ),
    ];
    let scenarios = scenarios
        .into_iter()
        .map(|(label, mode, workload, reshard, snapshot)| StatScenario {
            label,
            target: if snapshot {
                make_snapshot_store_target(shards, key_space, paper_params())
            } else if reshard {
                make_reshard_store_target(shards, key_space, paper_params())
            } else {
                make_store_target(shards, mode, key_space, paper_params())
            },
            workload,
            reshard,
        })
        .collect();
    sweep_stat_scenarios(
        "leapstore",
        format!(
            "LeapStore store_mixed (40% get, 10% range, 50% multi-shard txn), \
             {shards} shards, {} elements, uniform/zipf/collide/reshard/snapshot ({})",
            scale.elements, scale.name
        ),
        scenarios,
        scale,
    )
}

/// The memdb application panel: the paper's §4 in-memory database on
/// both table backends, swept over threads.
///
/// * `Memdb-raw-update` / `Memdb-sharded-update` — 100% modifications,
///   split between **indexed-column updates** (the covering entry moves
///   between age buckets, one transaction) and non-indexed rewrites.
/// * `Memdb-raw-scan` / `Memdb-sharded-scan` — the scan mix: 60%
///   `scan_by` index scans (odd windows run through the paged
///   `scan_by_pages` cursor), 20% point gets, 20% modifications.
/// * `Memdb-reshard` — the sharded update mix with a **background
///   rebalancer** splitting and merging index-heavy shards
///   mid-measurement.
///
/// Each series captures p50/p95/p99 per-op latency at the fixed thread
/// count plus (for the sharded backend) the backing store's stats JSON,
/// in the same `stats <series> <json>` format the `collect` bin appends
/// to `BENCH_leapstore.json`.
pub fn memdb(scale: &Scale) -> StoreFigure {
    let age_domain = scale.elements.max(2);
    let update_mix = Mix::write_only();
    let scan_mix = Mix::new(20, 60, 20);
    let scenarios: [(&'static str, bool, Mix, bool); 5] = [
        ("Memdb-raw-update", false, update_mix, false),
        ("Memdb-sharded-update", true, update_mix, false),
        ("Memdb-raw-scan", false, scan_mix, false),
        ("Memdb-sharded-scan", true, scan_mix, false),
        ("Memdb-reshard", true, update_mix, true),
    ];
    let scenarios = scenarios
        .into_iter()
        .map(|(label, sharded, mix, reshard)| StatScenario {
            label,
            // The reshard series starts on a deliberately skewed 4-shard
            // layout (each subspace's live keys piled on one shard) that
            // the background rebalancer must repair mid-measurement.
            target: make_memdb_target(sharded, reshard.then_some(4), age_domain, paper_params()),
            workload: Workload::paper(mix, age_domain),
            reshard,
        })
        .collect();
    sweep_stat_scenarios(
        "memdb",
        format!(
            "leap-memdb table (raw vs sharded backend): indexed-update and \
             scan_by mixes, {} rows, age domain {} ({})",
            scale.elements, age_domain, scale.name
        ),
        scenarios,
        scale,
    )
}

/// All four Fig. 17 panels sharing one prefill per algorithm (the paper
/// reuses the same initialized structure per configuration).
pub fn fig17_all(scale: &Scale) -> Vec<Figure> {
    let targets = fig17_targets(scale);
    vec![
        fig17_panel("fig17a", Mix::write_only(), "100% modify", scale, &targets),
        fig17_panel(
            "fig17b",
            Mix::read_dominated(),
            "40% lookup, 40% range-query, 20% modify",
            scale,
            &targets,
        ),
        fig17_panel("fig17c", Mix::lookup_only(), "100% lookup", scale, &targets),
        fig17_panel(
            "fig17d",
            Mix::range_only(),
            "100% range-query",
            scale,
            &targets,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny() -> Scale {
        Scale {
            name: "test",
            duration: Duration::from_millis(20),
            repeats: 1,
            threads: vec![1, 2],
            fixed_threads: 2,
            elements: 300,
            element_sweep: vec![100, 300],
            fig17_elements: 300,
        }
    }

    #[test]
    fn fig14a_has_all_series_and_points() {
        let f = fig14a(&tiny());
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.points.len(), 2);
            for (_, ops) in &s.points {
                assert!(*ops > 0.0, "{} produced zero throughput", s.label);
            }
        }
        let table = f.to_table();
        assert!(table.contains("Leap-LT"));
        assert!(table.contains("Leap-rwlock"));
    }

    #[test]
    fn fig15b_sweeps_elements() {
        let f = fig15b(&tiny());
        assert_eq!(f.series[0].points.len(), 2);
        assert_eq!(f.series[0].points[0].0, 100.0);
        assert_eq!(f.series[0].points[1].0, 300.0);
    }

    #[test]
    fn fig17d_compares_against_skiplists() {
        let f = fig17d(&tiny());
        let labels: Vec<_> = f.series.iter().map(|s| s.label).collect();
        assert!(labels.contains(&"Skiplist-tm"));
        assert!(labels.contains(&"Skiplist-cas"));
        assert!(labels.contains(&"Leap-LT"));
    }

    #[test]
    fn memdb_panel_carries_latency_and_sharded_store_stats() {
        let f = memdb(&tiny());
        assert_eq!(
            f.figure.series.len(),
            5,
            "raw/sharded × update/scan + reshard"
        );
        for s in &f.figure.series {
            for (_, ops) in &s.points {
                assert!(*ops > 0.0, "{} produced zero throughput", s.label);
            }
        }
        assert_eq!(f.stats.len(), 5);
        for (label, json) in &f.stats {
            assert!(
                crate::check::balanced_json_object(json),
                "{label}: every emitted snapshot must pass the collect gate: {json}"
            );
            assert!(json.contains("\"latency\":{"), "{label}: {json}");
            assert!(json.contains("\"p50_ns\":"), "{label}");
            assert!(json.contains("\"p95_ns\":"), "{label}");
            assert!(json.contains("\"p99_ns\":"), "{label}");
            assert!(json.contains("\"p999_ns\":"), "{label}");
            if label.contains("raw") {
                assert!(json.contains("\"store\":null"), "{label}: {json}");
            } else {
                assert!(json.contains("\"store\":{"), "{label}: {json}");
                assert!(json.contains("\"shards\":["), "{label}: {json}");
            }
        }
        let (_, reshard_json) = f
            .stats
            .iter()
            .find(|(l, _)| *l == "Memdb-reshard")
            .expect("reshard series present");
        assert!(reshard_json.contains("\"epoch\":"));
        let table = f.to_table();
        assert!(table.contains("stats Memdb-sharded-update {"));
        assert!(table.contains("stats Memdb-reshard {"));
    }

    #[test]
    fn leapstore_panel_carries_shard_stats_and_latency() {
        let f = leapstore(&tiny());
        assert_eq!(
            f.figure.series.len(),
            7,
            "hash/range × uniform/zipf plus collide plus reshard plus snapshot"
        );
        for s in &f.figure.series {
            for (_, ops) in &s.points {
                assert!(*ops > 0.0, "{} produced zero throughput", s.label);
            }
        }
        assert_eq!(f.stats.len(), 7);
        for (label, json) in &f.stats {
            assert!(
                crate::check::balanced_json_object(json),
                "{label}: every emitted snapshot must pass the collect gate: {json}"
            );
            assert!(json.contains("\"store\":{"), "{label}: {json}");
            assert!(json.contains("\"shards\":["), "{label}: {json}");
            assert!(json.contains("abort_rate"), "{label}");
            assert!(
                json.contains("\"conflict_read_aborts\":"),
                "{label}: abort-cause breakdown rides along: {json}"
            );
            assert!(json.contains("\"op_latency\":{"), "{label}: {json}");
            assert!(json.contains("\"latency\":{"), "{label}: {json}");
            assert!(json.contains("\"p50_ns\":"), "{label}");
            assert!(json.contains("\"p99_ns\":"), "{label}");
            assert!(json.contains("\"p999_ns\":"), "{label}");
        }
        let table = f.to_table();
        assert!(table.contains("stats Store-hash {"));
        assert!(table.contains("stats Store-range {"));
        assert!(table.contains("stats Store-hash-zipf {"));
        assert!(table.contains("stats Store-collide {"));
        assert!(table.contains("stats Store-reshard {"));
        assert!(table.contains("stats Store-scan-snapshot {"));
        let (_, reshard_json) = f
            .stats
            .iter()
            .find(|(l, _)| *l == "Store-reshard")
            .expect("reshard series present");
        assert!(
            reshard_json.contains("\"epoch\":"),
            "reshard stats carry the routing epoch: {reshard_json}"
        );
        assert!(reshard_json.contains("\"migrations_completed\":"));
        assert!(
            reshard_json.contains("\"concurrent_migrations\":"),
            "reshard stats report the in-flight migration count: {reshard_json}"
        );
        assert!(
            reshard_json.contains("\"peak_concurrent_migrations\":"),
            "reshard stats report the peak migration concurrency: {reshard_json}"
        );
        assert!(reshard_json.contains("\"key_spread_ratio\":"));
        let (_, snap_json) = f
            .stats
            .iter()
            .find(|(l, _)| *l == "Store-scan-snapshot")
            .expect("snapshot-scan series present");
        assert!(
            !snap_json.contains("\"snapshot_scans\":0,"),
            "the series actually pinned snapshots: {snap_json}"
        );
        assert!(
            snap_json.contains("\"bundle_depth\":"),
            "version-bundle depth rides along for the collect gate: {snap_json}"
        );
        assert!(
            snap_json.contains("\"snapshot_page\":{"),
            "pinned pages are timed per-op (the gated scan tail): {snap_json}"
        );
    }
}
