//! Scale presets: the paper's full settings versus laptop/CI-sized runs.

use std::time::Duration;

/// How big a figure sweep should be.
///
/// `paper` reproduces the published parameters (10-second runs, three
/// repetitions, thread counts to 80, 10M-element points); `quick` and
/// `medium` shrink durations and sweeps for constrained machines — the
/// *shape* comparisons (who wins, by what factor) remain meaningful.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Measured duration per point.
    pub duration: Duration,
    /// Repetitions averaged per point.
    pub repeats: usize,
    /// Thread sweep for Figs. 14 and 17.
    pub threads: Vec<usize>,
    /// Thread count for the fixed-thread figures (15 and 16; paper: 80).
    pub fixed_threads: usize,
    /// Initial elements per list for Figs. 14, 16 and the element sweep cap
    /// for Fig. 15.
    pub elements: u64,
    /// Element sweep for Fig. 15 (paper: 1k..10M).
    pub element_sweep: Vec<u64>,
    /// Initial elements for Fig. 17 (paper: 1M).
    pub fig17_elements: u64,
}

impl Scale {
    /// Seconds-long smoke preset (CI, `cargo bench` default).
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            duration: Duration::from_millis(200),
            repeats: 1,
            threads: vec![1, 2, 4],
            fixed_threads: 4,
            elements: 20_000,
            element_sweep: vec![1_000, 10_000, 100_000],
            fig17_elements: 50_000,
        }
    }

    /// Minutes-long preset used for EXPERIMENTS.md on this host.
    pub fn medium() -> Self {
        Scale {
            name: "medium",
            duration: Duration::from_millis(500),
            repeats: 2,
            threads: vec![1, 2, 4, 8],
            fixed_threads: 8,
            elements: 100_000,
            element_sweep: vec![1_000, 10_000, 100_000, 1_000_000],
            fig17_elements: 300_000,
        }
    }

    /// The paper's settings (hours on a large machine).
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            duration: Duration::from_secs(10),
            repeats: 3,
            threads: vec![1, 2, 4, 8, 16, 32, 40, 64, 80],
            fixed_threads: 80,
            elements: 100_000,
            element_sweep: vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            fig17_elements: 1_000_000,
        }
    }

    /// Parses a preset name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "medium" => Some(Self::medium()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_by_name() {
        assert_eq!(Scale::from_name("quick").unwrap().name, "quick");
        assert_eq!(Scale::from_name("medium").unwrap().name, "medium");
        assert_eq!(Scale::from_name("paper").unwrap().name, "paper");
        assert!(Scale::from_name("bogus").is_none());
    }

    #[test]
    fn paper_matches_published_settings() {
        let p = Scale::paper();
        assert_eq!(p.duration, Duration::from_secs(10));
        assert_eq!(p.repeats, 3);
        assert_eq!(*p.threads.last().unwrap(), 80);
        assert_eq!(p.elements, 100_000);
        assert_eq!(p.fig17_elements, 1_000_000);
        assert_eq!(*p.element_sweep.last().unwrap(), 10_000_000);
    }
}
