//! # leap-bench — evaluation harness for the Leap-List reproduction
//!
//! Regenerates every figure of the paper's evaluation (§3, Figures 14-17):
//! workload generation ([`workload`]), a timed multi-thread throughput
//! driver ([`driver`]), algorithm adapters ([`target`]) and per-figure
//! parameter sweeps ([`figures`]).
//!
//! Run `cargo run --release -p leap-bench --bin figures -- all` to print
//! every panel, or name panels individually (`fig14a`, `fig17d`, ...).
//! Scale presets (`quick` / `medium` / `paper`) trade fidelity for runtime;
//! see [`scale::Scale`].

#![deny(missing_docs)]

pub mod check;
pub mod driver;
pub mod figures;
pub mod rng;
pub mod scale;
pub mod target;
pub mod workload;
pub mod zipf;
