//! Zipfian key distribution (YCSB-style, Gray et al.'s quick method).
//!
//! The paper's workloads draw keys uniformly; real database index traffic
//! is skewed, so the harness also offers a zipfian generator as an
//! extension experiment (hot keys concentrate conflicts on a few
//! Leap-List nodes, stressing the validation/retry paths).

use crate::rng::Rng64;

/// Precomputed zipfian sampler over `1..=n` with skew `theta`
/// (0 < theta < 1; 0.99 is the YCSB default).
///
/// # Example
///
/// ```
/// use leap_bench::rng::Rng64;
/// use leap_bench::zipf::Zipf;
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = Rng64::new(1);
/// let k = z.sample(&mut rng);
/// assert!((1..=1000).contains(&k));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds the sampler. O(n) precomputation of the harmonic term.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `0.0 < theta < 1.0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1);
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank in `1..=n` (rank 1 is the hottest).
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let r = 1.0 + (self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha);
        (r as u64).clamp(1, self.n)
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(500, 0.99);
        let mut rng = Rng64::new(3);
        for _ in 0..50_000 {
            let s = z.sample(&mut rng);
            assert!((1..=500).contains(&s));
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = Rng64::new(9);
        let n = 200_000;
        let hot = (0..n).filter(|_| z.sample(&mut rng) <= 100).count();
        // Under uniform, ranks 1..=100 of 10k would get ~1% of draws; with
        // theta=0.99 they get a large plurality.
        assert!(
            hot > n / 4,
            "zipf(0.99) should send >25% of draws to the top 1% ({hot}/{n})"
        );
    }

    #[test]
    fn rank_frequencies_are_monotone() {
        let z = Zipf::new(64, 0.9);
        let mut rng = Rng64::new(77);
        let mut counts = [0u64; 65];
        for _ in 0..400_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Allow sampling noise, but rank 1 must clearly beat rank 8,
        // rank 8 must beat rank 64.
        assert!(counts[1] > counts[8]);
        assert!(counts[8] > counts[64]);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        Zipf::new(10, 1.5);
    }
}
