//! Adapters exposing each evaluated algorithm through one dyn-safe
//! interface, so the driver and figure sweeps are algorithm-agnostic.

use leap_memdb::{Backend, RowId, Schema, Table};
use leap_skiplist::{CasSkipList, TmSkipList};
use leap_store::{LeapStore, Partitioning, RebalanceAction, RebalancePolicy, StoreConfig};
use leaplist::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm, Params};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The algorithms measured in the paper's evaluation, plus the LeapStore
/// service layer built on top of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Leap-LT (the paper's proposal).
    LeapLt,
    /// Leap-tm (every op in a transaction).
    LeapTm,
    /// Leap-COP.
    LeapCop,
    /// Leap-rwlock.
    LeapRwlock,
    /// Skip-cas (Fraser-style lock-free skip-list).
    SkipCas,
    /// Skip-tm (transaction-wrapped skip-list).
    SkipTm,
    /// LeapStore: range-partitioned shards over Leap-LT, with cross-shard
    /// atomic batches and linearizable cross-shard range queries.
    LeapStore,
}

impl Algo {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::LeapLt => "Leap-LT",
            Algo::LeapTm => "Leap-tm",
            Algo::LeapCop => "Leap-COP",
            Algo::LeapRwlock => "Leap-rwlock",
            Algo::SkipCas => "Skiplist-cas",
            Algo::SkipTm => "Skiplist-tm",
            Algo::LeapStore => "LeapStore",
        }
    }

    /// The four Leap-List variants (Figs. 14-16).
    pub fn leap_variants() -> [Algo; 4] {
        [Algo::LeapTm, Algo::LeapRwlock, Algo::LeapCop, Algo::LeapLt]
    }

    /// The Fig. 17 series: skip-list baselines plus Leap-LT.
    pub fn skiplist_comparison() -> [Algo; 3] {
        [Algo::SkipTm, Algo::SkipCas, Algo::LeapLt]
    }
}

/// A benchmark target: `L` lists of one algorithm.
///
/// Modifications are composite over all `L` lists (the paper's
/// `Update(ll, k, v, s)` / `Remove(ll, k, s)`); lookups and range queries
/// address one list. Throughput counts one composite modification as one
/// operation, as the paper does.
pub trait BenchTarget: Send + Sync {
    /// Algorithm label.
    fn name(&self) -> &'static str;
    /// Number of lists (`L`).
    fn lists(&self) -> usize;
    /// Inserts keys `0..elements` (value = key) into every list.
    fn prefill(&self, elements: u64);
    /// Composite update: `keys[j] -> values[j]` in list `j`.
    fn update(&self, keys: &[u64], values: &[u64]);
    /// Composite remove.
    fn remove(&self, keys: &[u64]);
    /// Single-list lookup; returns whether the key was present.
    fn lookup(&self, list: usize, key: u64) -> bool;
    /// Single-list range query; returns the number of pairs collected.
    fn range_query(&self, list: usize, lo: u64, hi: u64) -> usize;
    /// Target-specific statistics as one JSON object (shard-level abort
    /// rates for LeapStore); `None` for targets without a stats surface.
    fn stats_json(&self) -> Option<String> {
        None
    }
    /// Advances the target's shard rebalancer by one bounded action;
    /// returns whether anything happened. `false` for targets without
    /// online resharding — a background driver can poll this and sleep
    /// when idle.
    fn rebalance_step(&self) -> bool {
        false
    }
}

macro_rules! leap_target {
    ($wrapper:ident, $list:ident, $label:expr) => {
        struct $wrapper {
            lists: Vec<$list<u64>>,
        }

        impl BenchTarget for $wrapper {
            fn name(&self) -> &'static str {
                $label
            }
            fn lists(&self) -> usize {
                self.lists.len()
            }
            fn prefill(&self, elements: u64) {
                for l in &self.lists {
                    for k in 0..elements {
                        l.update(k, k);
                    }
                }
            }
            fn update(&self, keys: &[u64], values: &[u64]) {
                let refs: Vec<&$list<u64>> = self.lists.iter().collect();
                $list::update_batch(&refs, keys, values);
            }
            fn remove(&self, keys: &[u64]) {
                let refs: Vec<&$list<u64>> = self.lists.iter().collect();
                $list::remove_batch(&refs, keys);
            }
            fn lookup(&self, list: usize, key: u64) -> bool {
                self.lists[list].lookup(key).is_some()
            }
            fn range_query(&self, list: usize, lo: u64, hi: u64) -> usize {
                self.lists[list].range_query(lo, hi).len()
            }
        }
    };
}

leap_target!(LtTarget, LeapListLt, "Leap-LT");
leap_target!(TmTarget, LeapListTm, "Leap-tm");
leap_target!(CopTarget, LeapListCop, "Leap-COP");
leap_target!(RwlockTarget, LeapListRwlock, "Leap-rwlock");

struct SkipCasTarget {
    list: CasSkipList,
}

impl BenchTarget for SkipCasTarget {
    fn name(&self) -> &'static str {
        "Skiplist-cas"
    }
    fn lists(&self) -> usize {
        1
    }
    fn prefill(&self, elements: u64) {
        for k in 0..elements {
            self.list.insert(k, k);
        }
    }
    fn update(&self, keys: &[u64], values: &[u64]) {
        self.list.insert(keys[0], values[0]);
    }
    fn remove(&self, keys: &[u64]) {
        self.list.remove(keys[0]);
    }
    fn lookup(&self, _list: usize, key: u64) -> bool {
        self.list.lookup(key).is_some()
    }
    fn range_query(&self, _list: usize, lo: u64, hi: u64) -> usize {
        // Non-linearizable, as measured in the paper (§3.1).
        self.list.range_query_inconsistent(lo, hi).len()
    }
}

struct SkipTmTarget {
    list: TmSkipList,
}

impl BenchTarget for SkipTmTarget {
    fn name(&self) -> &'static str {
        "Skiplist-tm"
    }
    fn lists(&self) -> usize {
        1
    }
    fn prefill(&self, elements: u64) {
        for k in 0..elements {
            self.list.insert(k, k);
        }
    }
    fn update(&self, keys: &[u64], values: &[u64]) {
        self.list.insert(keys[0], values[0]);
    }
    fn remove(&self, keys: &[u64]) {
        self.list.remove(keys[0]);
    }
    fn lookup(&self, _list: usize, key: u64) -> bool {
        self.list.lookup(key).is_some()
    }
    fn range_query(&self, _list: usize, lo: u64, hi: u64) -> usize {
        self.list.range_query(lo, hi).len()
    }
}

/// LeapStore as a bench target: `lists` is the shard count; the keyspace
/// is one logical dictionary, not `L` replicas. A composite "update" is a
/// cross-shard `multi_put`, a composite "remove" a cross-shard
/// `multi_delete` — the store's multi-shard transactions. Lookups and
/// range queries ignore the `list` argument (the router decides placement).
struct StoreTarget {
    store: LeapStore<u64>,
    shards: usize,
    /// Route range queries through the pinned-timestamp paged scan
    /// (`scan_snapshot_pages`) instead of the transactional `range`, so
    /// the series measures the version-bundle read path.
    snapshot_scans: bool,
}

impl BenchTarget for StoreTarget {
    fn name(&self) -> &'static str {
        "LeapStore"
    }
    fn lists(&self) -> usize {
        self.shards
    }
    fn prefill(&self, elements: u64) {
        for k in 0..elements {
            self.store.put(k, k);
        }
    }
    fn update(&self, keys: &[u64], values: &[u64]) {
        let entries: Vec<(u64, u64)> = keys.iter().copied().zip(values.iter().copied()).collect();
        self.store.multi_put(&entries);
    }
    fn remove(&self, keys: &[u64]) {
        self.store.multi_delete(keys);
    }
    fn lookup(&self, _list: usize, key: u64) -> bool {
        self.store.get(key).is_some()
    }
    fn range_query(&self, _list: usize, lo: u64, hi: u64) -> usize {
        if self.snapshot_scans {
            // Pin once, then page at the pinned timestamp: no retries
            // against concurrent commits, even mid-migration.
            self.store
                .scan_snapshot_pages(lo, hi, 128)
                .map(|page| page.len())
                .sum()
        } else {
            self.store.range(lo, hi).len()
        }
    }
    fn stats_json(&self) -> Option<String> {
        Some(self.store.stats().to_json())
    }
    fn rebalance_step(&self) -> bool {
        self.store.rebalance_step() != RebalanceAction::Idle
    }
}

/// The paper's closing application as a bench target: a `leap-memdb`
/// [`Table`] (`["user", "age"]`, age indexed) on either backend. The
/// driver's abstract ops map onto table operations:
///
/// * composite "update" — `update_column` of the **indexed** `age`
///   column on the row derived from the first key (the index-move path:
///   remove + insert + primary rewrite, one transaction);
/// * composite "remove" — `update_column` of the non-indexed `user`
///   column (covering-entry rewrite, one transaction), so the population
///   stays fixed while "modify" splits 50/50 between the two shapes;
/// * lookup — primary-key `get`;
/// * range query — `scan_by` over the age index (odd-numbered windows
///   run through the paged `scan_by_pages` cursor instead).
struct MemdbTarget {
    table: Table,
    /// Ages are drawn modulo this domain (the workload's key range).
    age_domain: u64,
    /// Rows created by prefill (ids `1..=rows`); 0 until prefilled.
    rows: AtomicU64,
    name: &'static str,
}

impl MemdbTarget {
    fn row(&self, key: u64) -> RowId {
        let rows = self.rows.load(Ordering::Relaxed).max(1);
        RowId(1 + key % rows)
    }
}

impl BenchTarget for MemdbTarget {
    fn name(&self) -> &'static str {
        self.name
    }
    fn lists(&self) -> usize {
        1
    }
    fn prefill(&self, elements: u64) {
        for i in 0..elements {
            self.table
                .insert(&[i, i % self.age_domain])
                .expect("valid row");
        }
        self.rows.fetch_add(elements, Ordering::Relaxed);
    }
    fn update(&self, keys: &[u64], values: &[u64]) {
        // Indexed-column update: the covering entry moves between age
        // buckets inside ONE transaction (a no-op move when the drawn age
        // equals the current one — still a full index-maintenance batch).
        let _ = self
            .table
            .update_column(self.row(keys[0]), "age", values[0] % self.age_domain);
    }
    fn remove(&self, keys: &[u64]) {
        // Non-indexed rewrite: all covering entries carry the new row.
        let _ = self.table.update_column(self.row(keys[0]), "user", keys[0]);
    }
    fn lookup(&self, _list: usize, key: u64) -> bool {
        self.table.get(self.row(key)).is_some()
    }
    fn range_query(&self, _list: usize, lo: u64, hi: u64) -> usize {
        let lo = lo.min(self.table.max_indexed_value());
        if hi % 2 == 1 {
            // The paged route: each page is one bounded transaction.
            self.table
                .scan_by_pages("age", lo, hi, 128)
                .expect("age is indexed")
                .map(|page| page.len())
                .sum()
        } else {
            self.table
                .scan_by("age", lo, hi)
                .expect("age is indexed")
                .len()
        }
    }
    fn stats_json(&self) -> Option<String> {
        self.table.store().map(|s| s.stats().to_json())
    }
    fn rebalance_step(&self) -> bool {
        self.table
            .store()
            .is_some_and(|s| s.rebalance_step() != RebalanceAction::Idle)
    }
}

/// Builds a memdb table target. `sharded` selects the LeapStore backend
/// (prefix-tagged subspaces, aggressive rebalance policy so a background
/// driver polling [`BenchTarget::rebalance_step`] splits index-heavy
/// shards); otherwise the raw per-index Leap-List backend. `age_domain`
/// should match the workload's key range so scans and updates hit the
/// populated part of the index.
///
/// `shards` (sharded backend only): `None` places each subspace on its
/// own shard — balanced from the start; `Some(n)` slices the tagged
/// keyspace into `n` even strides, which **concentrates** each
/// subspace's populated low end onto one shard (live keys sit far below
/// a stride boundary) — the skewed layout the `Memdb-reshard` series
/// hands a background rebalancer to repair via median-key splits.
pub fn make_memdb_target(
    sharded: bool,
    shards: Option<usize>,
    age_domain: u64,
    params: Params,
) -> Arc<dyn BenchTarget> {
    let schema = Schema::new(&["user", "age"]).with_index("age");
    let backend = if sharded {
        Backend::Sharded {
            params,
            shards,
            rebalance: RebalancePolicy {
                chunk: 256,
                split_ratio: 1.5,
                merge_ratio: 0.4,
                min_split_keys: 128,
                max_shards: 32,
                ..RebalancePolicy::default()
            },
        }
    } else {
        Backend::RawLists(params)
    };
    Arc::new(MemdbTarget {
        table: Table::with_backend(schema, backend),
        age_domain: age_domain.max(1),
        rows: AtomicU64::new(0),
        name: if sharded {
            "Memdb-sharded"
        } else {
            "Memdb-raw"
        },
    })
}

/// Builds a LeapStore target with explicit placement configuration: use
/// this when the workload's key range is known, so range partitioning can
/// slice it evenly (`make_target` defaults to hash partitioning, which
/// needs no key-space knowledge).
pub fn make_store_target(
    shards: usize,
    partitioning: Partitioning,
    key_space: u64,
    params: Params,
) -> Arc<dyn BenchTarget> {
    Arc::new(StoreTarget {
        store: LeapStore::new(
            StoreConfig::new(shards, partitioning)
                .with_key_space(key_space)
                .with_params(params),
        ),
        shards,
        snapshot_scans: false,
    })
}

/// Builds a range-partitioned LeapStore target with an **aggressive
/// rebalancing policy**, for the resharding benchmark series. The
/// declared key space is `shards ×` the workload's key range, so the
/// initial table concentrates the whole workload (prefill and all
/// sampled keys) on shard 0 — the hot-shard scenario a background thread
/// driving [`BenchTarget::rebalance_step`] must repair, splitting the hot
/// shard (and re-merging cold pairs) while the measured threads run.
pub fn make_reshard_store_target(
    shards: usize,
    key_space: u64,
    params: Params,
) -> Arc<dyn BenchTarget> {
    Arc::new(StoreTarget {
        store: LeapStore::new(
            StoreConfig::new(shards, Partitioning::Range)
                .with_key_space(key_space.saturating_mul(shards as u64))
                .with_params(params)
                .with_rebalancing(RebalancePolicy {
                    chunk: 256,
                    split_ratio: 1.5,
                    merge_ratio: 0.4,
                    min_split_keys: 128,
                    max_shards: 32,
                    ..RebalancePolicy::default()
                }),
        ),
        shards,
        snapshot_scans: false,
    })
}

/// Builds the `Store-scan-snapshot` target: the same hot-shard layout and
/// aggressive rebalancing policy as [`make_reshard_store_target`], but
/// every range query runs as a **snapshot-isolated paged scan** —
/// `scan_snapshot_pages` pins the commit timestamp on the first page and
/// serves every later page from the version bundles at that instant. The
/// series demonstrates that long scans neither retry against concurrent
/// commits nor abort across in-flight migrations: scan tails stay flat
/// while the write mix and the background rebalancer run.
pub fn make_snapshot_store_target(
    shards: usize,
    key_space: u64,
    params: Params,
) -> Arc<dyn BenchTarget> {
    Arc::new(StoreTarget {
        store: LeapStore::new(
            StoreConfig::new(shards, Partitioning::Range)
                .with_key_space(key_space.saturating_mul(shards as u64))
                .with_params(params)
                .with_rebalancing(RebalancePolicy {
                    chunk: 256,
                    split_ratio: 1.5,
                    merge_ratio: 0.4,
                    min_split_keys: 128,
                    max_shards: 32,
                    ..RebalancePolicy::default()
                }),
        ),
        shards,
        snapshot_scans: true,
    })
}

/// Builds a target of `lists` lists with the given Leap-List parameters
/// (skip-list targets ignore `params` and always have one list; the
/// LeapStore target interprets `lists` as its shard count).
pub fn make_target(algo: Algo, lists: usize, params: Params) -> Arc<dyn BenchTarget> {
    match algo {
        Algo::LeapLt => Arc::new(LtTarget {
            lists: LeapListLt::group(lists, params),
        }),
        Algo::LeapTm => Arc::new(TmTarget {
            lists: LeapListTm::group(lists, params),
        }),
        Algo::LeapCop => Arc::new(CopTarget {
            lists: LeapListCop::group(lists, params),
        }),
        Algo::LeapRwlock => Arc::new(RwlockTarget {
            lists: LeapListRwlock::group(lists, params),
        }),
        Algo::SkipCas => Arc::new(SkipCasTarget {
            list: CasSkipList::new(),
        }),
        Algo::SkipTm => Arc::new(SkipTmTarget {
            list: TmSkipList::new(),
        }),
        Algo::LeapStore => Arc::new(StoreTarget {
            store: LeapStore::new(StoreConfig::new(lists, Partitioning::Hash).with_params(params)),
            shards: lists,
            snapshot_scans: false,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_roundtrip() {
        for algo in [
            Algo::LeapLt,
            Algo::LeapTm,
            Algo::LeapCop,
            Algo::LeapRwlock,
            Algo::SkipCas,
            Algo::SkipTm,
            Algo::LeapStore,
        ] {
            let lists = if matches!(algo, Algo::SkipCas | Algo::SkipTm) {
                1
            } else {
                4
            };
            let t = make_target(
                algo,
                lists,
                Params {
                    node_size: 8,
                    max_level: 6,
                    use_trie: true,
                    ..Params::default()
                },
            );
            assert_eq!(t.lists(), lists);
            t.prefill(50);
            assert!(t.lookup(0, 25), "{} missing prefilled key", t.name());
            let keys: Vec<u64> = (0..lists as u64).map(|i| 100 + i).collect();
            let vals = vec![7u64; lists];
            t.update(&keys, &vals);
            assert!(t.lookup(0, 100), "{}", t.name());
            assert!(t.range_query(0, 0, 200) >= 51, "{}", t.name());
            t.remove(&keys);
            assert!(!t.lookup(0, 100), "{}", t.name());
            let expect_stats = algo == Algo::LeapStore;
            assert_eq!(t.stats_json().is_some(), expect_stats, "{}", t.name());
        }
    }

    #[test]
    fn store_target_reports_shard_stats() {
        let t = make_store_target(
            4,
            Partitioning::Range,
            1_000,
            Params {
                node_size: 8,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
        );
        t.prefill(100);
        t.update(&[10, 300, 600, 900], &[1, 2, 3, 4]);
        assert!(t.lookup(0, 600));
        assert!(t.range_query(0, 0, 999) >= 100);
        let json = t.stats_json().expect("store target has stats");
        assert!(
            json.contains("\"shard\":3"),
            "all four shards reported: {json}"
        );
        assert!(json.contains("abort_rate"));
    }

    #[test]
    fn snapshot_store_target_scans_at_a_pinned_timestamp() {
        let t = make_snapshot_store_target(
            4,
            1_000,
            Params {
                node_size: 8,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
        );
        t.prefill(300);
        assert_eq!(t.range_query(0, 0, 999), 300, "paged snapshot scan");
        t.update(&[50, 60], &[1, 2]);
        let json = t.stats_json().expect("store target has stats");
        assert!(
            json.contains("\"snapshot_scans\":1"),
            "range queries ride the snapshot path: {json}"
        );
        assert!(json.contains("\"bundle_depth\":"), "{json}");
        assert!(
            json.contains("\"snapshot_page\":{"),
            "snapshot pages are timed per-op: {json}"
        );
    }
}
