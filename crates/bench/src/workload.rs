//! Operation-mix generation matching the paper's workload descriptions
//! (§3 "Settings"): percentages of lookup / range-query / modify
//! operations, a uniform key space, and range-query spans drawn uniformly
//! from 1000..=2000 keys.

use crate::rng::Rng64;

/// An operation drawn from the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Composite update over the `L` lists.
    Update,
    /// Composite remove over the `L` lists.
    Remove,
    /// Single-list lookup.
    Lookup,
    /// Single-list range query.
    RangeQuery,
}

/// Percentages of each operation class. "Modify" operations split evenly
/// between updates and removes, as in the paper's write workloads.
///
/// # Example
///
/// ```
/// use leap_bench::workload::Mix;
/// let m = Mix::new(40, 40, 20);
/// assert_eq!(m.lookup_pct + m.range_pct + m.modify_pct, 100);
/// assert_eq!(Mix::write_only().modify_pct, 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Percent of lookups.
    pub lookup_pct: u32,
    /// Percent of range queries.
    pub range_pct: u32,
    /// Percent of modifications (updates + removes, split 50/50).
    pub modify_pct: u32,
}

impl Mix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics unless the percentages sum to 100.
    pub fn new(lookup_pct: u32, range_pct: u32, modify_pct: u32) -> Self {
        assert_eq!(
            lookup_pct + range_pct + modify_pct,
            100,
            "mix must sum to 100"
        );
        Mix {
            lookup_pct,
            range_pct,
            modify_pct,
        }
    }

    /// The paper's 100%-modify workload (Figs. 14a, 15a, 17a).
    pub fn write_only() -> Self {
        Mix::new(0, 0, 100)
    }

    /// The paper's read-dominated workload: 40% lookup, 40% range-query,
    /// 20% modify (Figs. 14b, 17b).
    pub fn read_dominated() -> Self {
        Mix::new(40, 40, 20)
    }

    /// 100% lookups (Figs. 15b, 17c).
    pub fn lookup_only() -> Self {
        Mix::new(100, 0, 0)
    }

    /// 100% range queries (Fig. 17d).
    pub fn range_only() -> Self {
        Mix::new(0, 100, 0)
    }

    /// The LeapStore service mix: 40% point gets, 10% cross-shard range
    /// queries, 50% modifications — and every modification is a
    /// **multi-shard transaction** (the driver draws one key per
    /// list/shard, which the store target applies as `multi_put` /
    /// `multi_delete`). This is the OLTP-with-scans shape the paper's
    /// in-memory-database application (§4) implies.
    pub fn store_mixed() -> Self {
        Mix::new(40, 10, 50)
    }
}

/// Key distribution for a workload.
#[derive(Debug, Clone, Default)]
pub enum KeyDist {
    /// Uniform over the key range (the paper's setting).
    #[default]
    Uniform,
    /// Zipfian-skewed (extension experiment; see [`crate::zipf`]).
    Zipfian(std::sync::Arc<crate::zipf::Zipf>),
}

/// How a composite modification draws its per-list (per-shard) keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BatchKeys {
    /// One independent key per list — the paper's composite `Update` /
    /// `Remove` (under a sharded store, keys usually spread over shards).
    #[default]
    PerList,
    /// One base key plus its successors (`base, base+1, ...`) — under
    /// range partitioning almost every batch piles all its keys onto one
    /// shard, the collision-heavy load that exercises the multi-op
    /// chain-rebuild path (`batch_collide` mix).
    CollideAdjacent,
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Operation mix.
    pub mix: Mix,
    /// Keys are drawn from `[0, key_range)` (paper: 0..100000).
    pub key_range: u64,
    /// Minimum range-query span (paper: 1000).
    pub span_min: u64,
    /// Maximum range-query span (paper: 2000).
    pub span_max: u64,
    /// How keys are drawn.
    pub key_dist: KeyDist,
    /// How composite modifications draw their key vectors.
    pub batch_keys: BatchKeys,
}

impl Workload {
    /// The paper's standard settings over a given mix and key range.
    pub fn paper(mix: Mix, key_range: u64) -> Self {
        Workload {
            mix,
            key_range,
            span_min: 1000,
            span_max: 2000,
            key_dist: KeyDist::Uniform,
            batch_keys: BatchKeys::PerList,
        }
    }

    /// The paper's settings but with zipfian-skewed keys (`theta` in
    /// (0, 1); 0.99 = YCSB default).
    pub fn zipfian(mix: Mix, key_range: u64, theta: f64) -> Self {
        Workload {
            key_dist: KeyDist::Zipfian(std::sync::Arc::new(crate::zipf::Zipf::new(
                key_range.max(1),
                theta,
            ))),
            ..Self::paper(mix, key_range)
        }
    }

    /// The `batch_collide` mix: the paper's settings, but every composite
    /// modification draws **adjacent** keys, so under range partitioning
    /// batches collide onto one shard.
    pub fn colliding(mix: Mix, key_range: u64) -> Self {
        Workload {
            batch_keys: BatchKeys::CollideAdjacent,
            ..Self::paper(mix, key_range)
        }
    }

    /// Fills `keys` with one key per list according to
    /// [`Workload::batch_keys`].
    pub fn sample_batch_keys(&self, rng: &mut Rng64, keys: &mut [u64]) {
        match self.batch_keys {
            BatchKeys::PerList => {
                for k in keys.iter_mut() {
                    *k = self.sample_key(rng);
                }
            }
            BatchKeys::CollideAdjacent => {
                let base = self.sample_key(rng);
                for (j, k) in keys.iter_mut().enumerate() {
                    *k = (base + j as u64) % self.key_range.max(1);
                }
            }
        }
    }

    /// Draws the next operation kind.
    pub fn sample_kind(&self, rng: &mut Rng64) -> OpKind {
        let p = rng.below(100) as u32;
        if p < self.mix.lookup_pct {
            OpKind::Lookup
        } else if p < self.mix.lookup_pct + self.mix.range_pct {
            OpKind::RangeQuery
        } else if rng.below(2) == 0 {
            OpKind::Update
        } else {
            OpKind::Remove
        }
    }

    /// Draws a key.
    pub fn sample_key(&self, rng: &mut Rng64) -> u64 {
        match &self.key_dist {
            KeyDist::Uniform => rng.below(self.key_range),
            KeyDist::Zipfian(z) => z.sample(rng) - 1,
        }
    }

    /// Draws a range `[lo, hi]` whose span is uniform in
    /// `[span_min, span_max]`.
    pub fn sample_range(&self, rng: &mut Rng64) -> (u64, u64) {
        let span = self.span_min + rng.below(self.span_max - self.span_min + 1);
        let lo = rng.below(self.key_range);
        (lo, lo + span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_frequencies_are_close() {
        let wl = Workload::paper(Mix::read_dominated(), 100_000);
        let mut rng = Rng64::new(1);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            match wl.sample_kind(&mut rng) {
                OpKind::Update => counts[0] += 1,
                OpKind::Remove => counts[1] += 1,
                OpKind::Lookup => counts[2] += 1,
                OpKind::RangeQuery => counts[3] += 1,
            }
        }
        let pct = |c: usize| c * 100 / n;
        assert!(
            (8..=12).contains(&pct(counts[0])),
            "updates {}",
            pct(counts[0])
        );
        assert!(
            (8..=12).contains(&pct(counts[1])),
            "removes {}",
            pct(counts[1])
        );
        assert!(
            (37..=43).contains(&pct(counts[2])),
            "lookups {}",
            pct(counts[2])
        );
        assert!(
            (37..=43).contains(&pct(counts[3])),
            "ranges {}",
            pct(counts[3])
        );
    }

    #[test]
    fn spans_within_paper_bounds() {
        let wl = Workload::paper(Mix::range_only(), 100_000);
        let mut rng = Rng64::new(2);
        for _ in 0..10_000 {
            let (lo, hi) = wl.sample_range(&mut rng);
            let span = hi - lo;
            assert!((1000..=2000).contains(&span), "span {span}");
            assert!(lo < 100_000);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_rejected() {
        Mix::new(50, 50, 50);
    }

    #[test]
    fn colliding_batches_draw_adjacent_keys() {
        let wl = Workload::colliding(Mix::write_only(), 1_000);
        assert_eq!(wl.batch_keys, BatchKeys::CollideAdjacent);
        let mut rng = Rng64::new(3);
        let mut keys = [0u64; 4];
        for _ in 0..1_000 {
            wl.sample_batch_keys(&mut rng, &mut keys);
            for w in keys.windows(2) {
                assert!(
                    w[1] == w[0] + 1 || w[1] == (w[0] + 1) % 1_000,
                    "keys not adjacent: {keys:?}"
                );
            }
            for k in keys {
                assert!(k < 1_000);
            }
        }
        // The default draws independent keys.
        let wl = Workload::paper(Mix::write_only(), 1_000);
        assert_eq!(wl.batch_keys, BatchKeys::PerList);
        let mut distinct = false;
        for _ in 0..100 {
            wl.sample_batch_keys(&mut rng, &mut keys);
            if keys.windows(2).any(|w| w[1] != w[0] + 1) {
                distinct = true;
            }
        }
        assert!(distinct, "independent draws must not always be adjacent");
    }

    #[test]
    fn store_mix_sums_and_modifies_half() {
        let m = Mix::store_mixed();
        assert_eq!(m.lookup_pct + m.range_pct + m.modify_pct, 100);
        assert_eq!(m.modify_pct, 50, "half the ops are multi-shard txns");
    }
}
