//! Small, allocation-free PRNG for workload sampling (xorshift64*), so the
//! generator itself never shows up in the measured path.

/// Deterministic per-thread generator.
///
/// # Example
///
/// ```
/// let mut r = leap_bench::rng::Rng64::new(42);
/// let a = r.next_u64();
/// let b = r.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(leap_bench::rng::Rng64::new(42).next_u64(), a, "deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a nonzero-ified seed.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed | 1, // xorshift state must be nonzero
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn zero_seed_still_works() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
