//! Schema checks shared by the `collect` bin and the figure tests: a
//! structural validator for the pass-through `stats <series> <json>`
//! lines, so a malformed snapshot is refused at emission time (figure
//! tests), at collection time (`collect`), and in CI (`collect --check`)
//! with one definition of "well-formed".

/// Whether `s` is one balanced JSON object: `{` ... `}` with every brace
/// and bracket matched outside string literals and every string closed.
/// Not a full JSON parser — but enough that a truncated or over-closed
/// `stats` line (the only way `collect`'s pass-through splicing could
/// corrupt the trajectory array) is refused instead of appended.
pub fn balanced_json_object(s: &str) -> bool {
    let mut depth: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut seen_any = false;
    // char_indices: `i` must be a BYTE offset for the trailing-garbage
    // slice below — a char count would split multibyte input.
    for (i, c) in s.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                if i == 0 && c != '{' {
                    return false;
                }
                depth.push(c as u8);
                seen_any = true;
            }
            '}' => {
                if depth.pop() != Some(b'{') {
                    return false;
                }
                // A closed top-level object must end the line.
                if depth.is_empty() && !s[i + c.len_utf8()..].trim().is_empty() {
                    return false;
                }
            }
            ']' => {
                if depth.pop() != Some(b'[') {
                    return false;
                }
            }
            _ => {
                if depth.is_empty() {
                    return false;
                }
            }
        }
    }
    seen_any && depth.is_empty() && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_object_accepts_only_one_closed_object() {
        assert!(balanced_json_object("{\"x\":1}"));
        assert!(balanced_json_object("{}"));
        assert!(balanced_json_object(
            "{\"a\":{\"b\":[1,2,{}]},\"c\":\"}{\"}"
        ));
        assert!(balanced_json_object("{\"a\":\"esc\\\"}\"}"));
        assert!(balanced_json_object("{\"label\":\"débit-日本\"}"));
        assert!(
            !balanced_json_object("[1,2]"),
            "top level must be an object"
        );
        assert!(!balanced_json_object(""));
        assert!(!balanced_json_object("{\"a\":1}}"), "extra closer");
        assert!(!balanced_json_object("{{\"a\":1}"), "extra opener");
        assert!(
            !balanced_json_object("{\"a\":[1,2}"),
            "bracket closed by brace"
        );
        assert!(!balanced_json_object("{\"a\":\"un}"), "unterminated string");
        assert!(
            !balanced_json_object("{\"a\":1} {\"b\":2}"),
            "trailing second object"
        );
    }
}
