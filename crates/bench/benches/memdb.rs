//! Criterion micro-benchmarks for the memdb application layer: row
//! mutations and index scans on both table backends — per-op cost
//! companion to the `memdb` throughput panel (`cargo run -p leap-bench
//! --bin figures -- memdb`). The interesting comparison is
//! `update_age` (indexed-column update: covering entry moves between
//! buckets in ONE transaction) raw vs sharded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_memdb::{Backend, RowId, Schema, Table};
use leap_store::RebalancePolicy;
use leaplist::Params;
use std::time::Duration;

const ROWS: u64 = 10_000;
const AGE_DOM: u64 = 1_000;

fn table(sharded: bool) -> Table {
    let schema = Schema::new(&["user", "age"]).with_index("age");
    let backend = if sharded {
        Backend::Sharded {
            params: Params::default(),
            shards: None,
            rebalance: RebalancePolicy::default(),
        }
    } else {
        Backend::RawLists(Params::default())
    };
    let t = Table::with_backend(schema, backend);
    for i in 0..ROWS {
        t.insert(&[i, i % AGE_DOM]).expect("valid row");
    }
    t
}

fn bench_backend(c: &mut Criterion, label: &str, sharded: bool) {
    let t = table(sharded);
    let mut group = c.benchmark_group("memdb");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("get", label), |b| {
        b.iter(|| {
            k = (k + 7919) % ROWS;
            std::hint::black_box(t.get(RowId(1 + k)))
        })
    });
    group.bench_function(BenchmarkId::new("update_age", label), |b| {
        b.iter(|| {
            k = (k + 7919) % ROWS;
            std::hint::black_box(t.update_column(RowId(1 + k % ROWS), "age", k % AGE_DOM))
        })
    });
    group.bench_function(BenchmarkId::new("update_user", label), |b| {
        b.iter(|| {
            k = (k + 7919) % ROWS;
            std::hint::black_box(t.update_column(RowId(1 + k % ROWS), "user", k))
        })
    });
    group.bench_function(BenchmarkId::new("scan_by_50", label), |b| {
        b.iter(|| {
            k = (k + 7919) % (AGE_DOM - 50);
            std::hint::black_box(t.scan_by("age", k, k + 49).expect("indexed").len())
        })
    });
    group.bench_function(BenchmarkId::new("scan_by_pages_50", label), |b| {
        b.iter(|| {
            k = (k + 7919) % (AGE_DOM - 50);
            let pages = t
                .scan_by_pages("age", k, k + 49, 64)
                .expect("indexed")
                .map(|p| p.len())
                .sum::<usize>();
            std::hint::black_box(pages)
        })
    });
    group.bench_function(BenchmarkId::new("insert_delete", label), |b| {
        b.iter(|| {
            let id = t.insert(&[7, 7]).expect("valid row");
            std::hint::black_box(t.delete(id).expect("live row"))
        })
    });
    group.finish();
}

fn bench_memdb(c: &mut Criterion) {
    bench_backend(c, "raw", false);
    bench_backend(c, "sharded", true);
}

criterion_group!(benches, bench_memdb);
criterion_main!(benches);
