//! `cargo bench` target regenerating Figure 17 (Leap-LT versus the
//! skip-list baselines, four workload panels). Scale via
//! LEAP_BENCH_SCALE=quick|medium|paper.

use leap_bench::figures::fig17_all;
use leap_bench::scale::Scale;

fn main() {
    let scale = std::env::var("LEAP_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::from_name(&s))
        .unwrap_or_else(Scale::quick);
    for fig in fig17_all(&scale) {
        print!("{}", fig.to_table());
    }
}
