//! Extension experiments beyond the paper's evaluation:
//!
//! 1. **Key skew** — the paper draws keys uniformly; database index
//!    traffic is usually zipfian. Hot keys concentrate every conflict on
//!    a handful of Leap-List nodes, stressing the LT validation/retry
//!    machinery.
//! 2. **Operation latency percentiles** — the paper reports throughput
//!    only; tail latency shows the cost of retry loops under contention.

use leap_bench::driver::{run_latency, run_throughput, RunCfg};
use leap_bench::scale::Scale;
use leap_bench::target::{make_target, Algo};
use leap_bench::workload::{Mix, Workload};
use leaplist::Params;

fn main() {
    let scale = std::env::var("LEAP_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::from_name(&s))
        .unwrap_or_else(Scale::quick);
    let elements = scale.elements;
    let threads = scale.fixed_threads;
    let cfg = RunCfg {
        threads,
        duration: scale.duration,
        repeats: scale.repeats,
        seed: 0xE47,
    };

    println!(
        "== extension: uniform vs zipfian keys ({} elements, {} threads) ==",
        elements, threads
    );
    println!(
        "{:>14}{:>12}{:>16}{:>16}",
        "algorithm", "mix", "uniform ops/s", "zipf99 ops/s"
    );
    for algo in [Algo::LeapLt, Algo::LeapCop, Algo::SkipCas] {
        for (mix_name, mix) in [
            ("modify", Mix::write_only()),
            ("40/40/20", Mix::read_dominated()),
        ] {
            let lists = if algo == Algo::SkipCas { 1 } else { 4 };
            let t = make_target(algo, lists, Params::default());
            t.prefill(elements);
            let uni = run_throughput(&t, &Workload::paper(mix, elements.max(2)), &cfg);
            let zip = run_throughput(&t, &Workload::zipfian(mix, elements.max(2), 0.99), &cfg);
            println!(
                "{:>14}{:>12}{:>16.0}{:>16.0}",
                algo.label(),
                mix_name,
                uni,
                zip
            );
        }
    }

    println!("\n== extension: latency percentiles (40/40/20 mix) ==");
    println!(
        "{:>14}{:>12}{:>12}{:>12}{:>12}",
        "algorithm", "p50 ns", "p95 ns", "p99 ns", "mean ns"
    );
    for algo in [Algo::LeapLt, Algo::LeapTm, Algo::LeapRwlock, Algo::SkipCas] {
        let lists = if algo == Algo::SkipCas { 1 } else { 4 };
        let t = make_target(algo, lists, Params::default());
        t.prefill(elements);
        let r = run_latency(
            &t,
            &Workload::paper(Mix::read_dominated(), elements.max(2)),
            &cfg,
        );
        println!(
            "{:>14}{:>12}{:>12}{:>12}{:>12}",
            algo.label(),
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.mean_ns
        );
    }
}
