//! Criterion micro-benchmarks for the LeapStore service layer:
//! single-key ops, cross-shard batches and cross-shard range queries,
//! under both partitioning modes — the per-op cost companion to the
//! `leapstore` throughput panel (`cargo run -p leap-bench --bin figures
//! -- leapstore`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_store::{LeapStore, Partitioning, StoreConfig};
use std::time::Duration;

const PREFILL: u64 = 10_000;
const SPAN: u64 = 500;
const SHARDS: usize = 4;

fn store(mode: Partitioning) -> LeapStore<u64> {
    let s = LeapStore::new(StoreConfig::new(SHARDS, mode).with_key_space(PREFILL));
    for k in 0..PREFILL {
        s.put(k, k);
    }
    s
}

fn bench_mode(c: &mut Criterion, label: &str, mode: Partitioning) {
    let s = store(mode);
    let mut group = c.benchmark_group("leapstore");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("get", label), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(s.get(k))
        })
    });
    group.bench_function(BenchmarkId::new("put", label), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(s.put(k, k))
        })
    });
    group.bench_function(BenchmarkId::new("range", label), |b| {
        b.iter(|| {
            k = (k + 7919) % (PREFILL - SPAN);
            std::hint::black_box(s.range(k, k + SPAN).len())
        })
    });
    // One key per shard: the fast-path cross-shard transaction.
    let stride = PREFILL / SHARDS as u64;
    group.bench_function(BenchmarkId::new("multi_put_4shard", label), |b| {
        b.iter(|| {
            k = (k + 7919) % stride;
            let entries: Vec<(u64, u64)> =
                (0..SHARDS as u64).map(|sh| (sh * stride + k, k)).collect();
            std::hint::black_box(s.multi_put(&entries))
        })
    });
    // Three keys on one shard: the collision path — a single multi-op
    // chain-rebuild transaction (range mode guarantees the collision;
    // under hash mode adjacency usually spreads, so this doubles as the
    // mixed comparison). The seed applied these in seqlock-guarded rounds.
    group.bench_function(BenchmarkId::new("multi_put_collide", label), |b| {
        b.iter(|| {
            k = (k + 7919) % (stride - 3);
            std::hint::black_box(s.multi_put(&[(k, 1), (k + 1, 2), (k + 2, 3)]))
        })
    });
    // Eight keys on one shard: deeper chains per commit, where the
    // single-transaction path amortizes best.
    group.bench_function(BenchmarkId::new("multi_put_collide8", label), |b| {
        b.iter(|| {
            k = (k + 7919) % (stride - 8);
            let entries: Vec<(u64, u64)> = (0..8u64).map(|i| (k + i, i)).collect();
            std::hint::black_box(s.multi_put(&entries))
        })
    });
    group.finish();
}

/// Instrumentation overhead check: the headline point op and the deepest
/// collision batch, with the default-on obs (recorder + histograms
/// recording) against a store built `with_obs(false)` (bare `Option`
/// branch). The two medians per op are what the ≤5% overhead budget is
/// judged on.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("leapstore_obs");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (label, obs) in [("on", true), ("off", false)] {
        let s = LeapStore::new(
            StoreConfig::new(SHARDS, Partitioning::Range)
                .with_key_space(PREFILL)
                .with_obs(obs),
        );
        for k in 0..PREFILL {
            s.put(k, k);
        }
        let stride = PREFILL / SHARDS as u64;
        let mut k = 0u64;
        group.bench_function(BenchmarkId::new("get", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(s.get(k))
            })
        });
        group.bench_function(BenchmarkId::new("multi_put_collide8", label), |b| {
            b.iter(|| {
                k = (k + 7919) % (stride - 8);
                let entries: Vec<(u64, u64)> = (0..8u64).map(|i| (k + i, i)).collect();
                std::hint::black_box(s.multi_put(&entries))
            })
        });
    }
    group.finish();
}

/// Tracing overhead check: default head sampling (1/32 gets elected,
/// every put spanned) against a store with no tracer at all. The get
/// row exercises the sampled-only span election, the put row the
/// always-on span begin + phase noting — the ≤5% trace budget is judged
/// on these medians.
fn bench_trace_overhead(c: &mut Criterion) {
    // Longer windows than the sibling groups: the on/off delta under
    // judgment here is a few percent, below what 600ms windows resolve
    // on a noisy host.
    let mut group = c.benchmark_group("leapstore_trace");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for (label, traced) in [("on", true), ("off", false)] {
        let mut config = StoreConfig::new(SHARDS, Partitioning::Range).with_key_space(PREFILL);
        if traced {
            config = config.with_tracing(leap_obs::TraceConfig::default());
        }
        let s: LeapStore<u64> = LeapStore::new(config);
        for k in 0..PREFILL {
            s.put(k, k);
        }
        let mut k = 0u64;
        group.bench_function(BenchmarkId::new("get", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(s.get(k))
            })
        });
        group.bench_function(BenchmarkId::new("put", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(s.put(k, k))
            })
        });
    }
    group.finish();
}

fn bench_leapstore(c: &mut Criterion) {
    bench_mode(c, "hash", Partitioning::Hash);
    bench_mode(c, "range", Partitioning::Range);
    bench_obs_overhead(c);
    bench_trace_overhead(c);
}

criterion_group!(benches, bench_leapstore);
criterion_main!(benches);
