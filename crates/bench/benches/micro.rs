//! Criterion micro-benchmarks: single-threaded latency of each operation
//! on every structure (complements the throughput figures with per-op
//! costs: LT lookups run no transaction, tm lookups instrument every hop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_skiplist::{CasSkipList, TmSkipList};
use leaplist::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm, Params, RangeMap};
use std::time::Duration;

const PREFILL: u64 = 10_000;
const SPAN: u64 = 500;

fn prefill_map(map: &dyn RangeMap<u64>) {
    for k in 0..PREFILL {
        map.update(k, k);
    }
}

fn bench_variant(c: &mut Criterion, name: &str, map: &dyn RangeMap<u64>) {
    prefill_map(map);
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("lookup", name), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(map.lookup(k))
        })
    });
    group.bench_function(BenchmarkId::new("update", name), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(map.update(k, k))
        })
    });
    group.bench_function(BenchmarkId::new("range_query", name), |b| {
        b.iter(|| {
            k = (k + 7919) % (PREFILL - SPAN);
            std::hint::black_box(map.range_query(k, k + SPAN).len())
        })
    });
    group.finish();
}

fn bench_leaplists(c: &mut Criterion) {
    let p = Params::default();
    bench_variant(c, "Leap-LT", &LeapListLt::<u64>::new(p.clone()));
    bench_variant(c, "Leap-COP", &LeapListCop::<u64>::new(p.clone()));
    bench_variant(c, "Leap-tm", &LeapListTm::<u64>::new(p.clone()));
    bench_variant(c, "Leap-rwlock", &LeapListRwlock::<u64>::new(p));
}

fn bench_skiplists(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let cas = CasSkipList::new();
    let tm = TmSkipList::new();
    for k in 0..PREFILL {
        cas.insert(k, k);
        tm.insert(k, k);
    }
    let mut k = 0u64;
    group.bench_function(BenchmarkId::new("lookup", "Skiplist-cas"), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(cas.lookup(k))
        })
    });
    group.bench_function(BenchmarkId::new("lookup", "Skiplist-tm"), |b| {
        b.iter(|| {
            k = (k + 7919) % PREFILL;
            std::hint::black_box(tm.lookup(k))
        })
    });
    group.bench_function(BenchmarkId::new("range_query", "Skiplist-cas"), |b| {
        b.iter(|| {
            k = (k + 7919) % (PREFILL - SPAN);
            std::hint::black_box(cas.range_query_inconsistent(k, k + SPAN).len())
        })
    });
    group.bench_function(BenchmarkId::new("range_query", "Skiplist-tm"), |b| {
        b.iter(|| {
            k = (k + 7919) % (PREFILL - SPAN);
            std::hint::black_box(tm.range_query(k, k + SPAN).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_leaplists, bench_skiplists);
criterion_main!(benches);
