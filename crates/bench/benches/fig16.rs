//! `cargo bench` target regenerating Figure 16 (read-percentage sweeps).
//! Scale via LEAP_BENCH_SCALE=quick|medium|paper.

use leap_bench::figures::{fig16a, fig16b};
use leap_bench::scale::Scale;

fn main() {
    let scale = std::env::var("LEAP_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::from_name(&s))
        .unwrap_or_else(Scale::quick);
    print!("{}", fig16a(&scale).to_table());
    print!("{}", fig16b(&scale).to_table());
}
