//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! 1. intra-node **trie vs binary search** (the String-B-tree trie is the
//!    paper's intra-node index);
//! 2. **node size K** (the paper picked K=300 experimentally);
//! 3. STM commit strategy for Leap-LT: **write-back vs write-through**
//!    (GCC-TM, the paper's substrate, is write-through).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_stm::{Mode, StmDomain};
use leaplist::{LeapListLt, Params};
use std::sync::Arc;
use std::time::Duration;

const PREFILL: u64 = 20_000;

fn group_cfg<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name.to_string());
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g
}

fn trie_vs_binary_search(c: &mut Criterion) {
    let mut g = group_cfg(c, "ablation_intra_node");
    for (label, use_trie) in [("trie", true), ("binary_search", false)] {
        for node_size in [300usize, 1024] {
            let p = Params {
                node_size,
                max_level: 10,
                use_trie,
                ..Params::default()
            };
            let l: LeapListLt<u64> = LeapListLt::new(p);
            for k in 0..PREFILL {
                l.update(k, k);
            }
            let mut k = 0u64;
            g.bench_function(
                BenchmarkId::new(format!("lookup_{label}"), node_size),
                |b| {
                    b.iter(|| {
                        k = (k + 7919) % PREFILL;
                        std::hint::black_box(l.lookup(k))
                    })
                },
            );
        }
    }
    g.finish();
}

fn node_size_sweep(c: &mut Criterion) {
    let mut g = group_cfg(c, "ablation_node_size");
    for node_size in [8usize, 32, 128, 300, 1024] {
        let p = Params {
            node_size,
            max_level: 10,
            use_trie: true,
            ..Params::default()
        };
        let l: LeapListLt<u64> = LeapListLt::new(p);
        for k in 0..PREFILL {
            l.update(k, k);
        }
        let mut k = 0u64;
        g.bench_function(BenchmarkId::new("range_query_1500", node_size), |b| {
            b.iter(|| {
                k = (k + 7919) % (PREFILL - 1500);
                std::hint::black_box(l.range_query(k, k + 1500).len())
            })
        });
        g.bench_function(BenchmarkId::new("update", node_size), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(l.update(k, k))
            })
        });
    }
    g.finish();
}

fn write_back_vs_write_through(c: &mut Criterion) {
    let mut g = group_cfg(c, "ablation_stm_mode");
    for (label, mode) in [
        ("write_back", Mode::WriteBack),
        ("write_through", Mode::WriteThrough),
    ] {
        let domain = Arc::new(StmDomain::with_config(mode, 16));
        let l: LeapListLt<u64> = LeapListLt::with_domain(Params::default(), domain);
        for k in 0..PREFILL {
            l.update(k, k);
        }
        let mut k = 0u64;
        g.bench_function(BenchmarkId::new("update", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(l.update(k, k))
            })
        });
        g.bench_function(BenchmarkId::new("range_query_1500", label), |b| {
            b.iter(|| {
                k = (k + 7919) % (PREFILL - 1500);
                std::hint::black_box(l.range_query(k, k + 1500).len())
            })
        });
    }
    g.finish();
}

fn traversal_styles(c: &mut Criterion) {
    use leaplist::Traversal;
    let mut g = group_cfg(c, "ablation_traversal");
    for (label, traversal) in [
        ("mark_check", Traversal::MarkCheck),
        ("single_loc_read", Traversal::SingleLocationRead),
    ] {
        let l: LeapListLt<u64> = LeapListLt::new(Params {
            traversal,
            ..Params::default()
        });
        for k in 0..PREFILL {
            l.update(k, k);
        }
        let mut k = 0u64;
        g.bench_function(BenchmarkId::new("lookup", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(l.lookup(k))
            })
        });
        g.bench_function(BenchmarkId::new("update", label), |b| {
            b.iter(|| {
                k = (k + 7919) % PREFILL;
                std::hint::black_box(l.update(k, k))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    trie_vs_binary_search,
    node_size_sweep,
    write_back_vs_write_through,
    traversal_styles
);
criterion_main!(benches);
