//! `cargo bench` target regenerating Figure 15 (element-count sweeps at a
//! fixed thread count). Scale via LEAP_BENCH_SCALE=quick|medium|paper.

use leap_bench::figures::{fig15a, fig15b};
use leap_bench::scale::Scale;

fn main() {
    let scale = std::env::var("LEAP_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::from_name(&s))
        .unwrap_or_else(Scale::quick);
    print!("{}", fig15a(&scale).to_table());
    print!("{}", fig15b(&scale).to_table());
}
