//! `cargo bench` target regenerating Figure 14 (thread sweeps over the
//! four Leap-List variants). Scale via LEAP_BENCH_SCALE=quick|medium|paper.

use leap_bench::figures::{fig14a, fig14b};
use leap_bench::scale::Scale;

fn main() {
    let scale = std::env::var("LEAP_BENCH_SCALE")
        .ok()
        .and_then(|s| Scale::from_name(&s))
        .unwrap_or_else(Scale::quick);
    print!("{}", fig14a(&scale).to_table());
    print!("{}", fig14b(&scale).to_table());
}
