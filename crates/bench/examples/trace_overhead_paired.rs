//! Paired leap-trace overhead measurement: alternates small batches
//! between a traced store (default head sampling) and an untraced one,
//! flipping the order every round, so slow host drift — which swamps a
//! few-percent delta in back-to-back criterion groups on a busy box —
//! cancels out of the comparison. This is the measurement the ≤5%
//! tracing budget is checked against when the `leapstore_trace`
//! criterion group is too noisy to resolve it.
//!
//! ```sh
//! cargo run --release -p leap-bench --example trace_overhead_paired
//! ```

use leap_store::{LeapStore, Partitioning, StoreConfig};
use std::time::Instant;

const PREFILL: u64 = 10_000;
const ROUNDS: usize = 400;
const BATCH: u64 = 500;

fn store(traced: bool) -> LeapStore<u64> {
    let mut config = StoreConfig::new(4, Partitioning::Range).with_key_space(PREFILL);
    if traced {
        config = config.with_tracing(leap_obs::TraceConfig::default());
    }
    let s = LeapStore::new(config);
    for k in 0..PREFILL {
        s.put(k, k);
    }
    s
}

/// Runs `op` against the traced/untraced pair in alternating,
/// order-flipping batches; returns (traced ns/op, untraced ns/op).
fn paired(
    on: &LeapStore<u64>,
    off: &LeapStore<u64>,
    mut op: impl FnMut(&LeapStore<u64>, u64),
) -> (u128, u128) {
    let (mut t_on, mut t_off) = (0u128, 0u128);
    let mut k = 0u64;
    for round in 0..ROUNDS {
        for phase in 0..2 {
            let traced_first = round.is_multiple_of(2);
            let use_on = (phase == 0) == traced_first;
            let s = if use_on { on } else { off };
            let t0 = Instant::now();
            for _ in 0..BATCH {
                k = (k + 7919) % PREFILL;
                op(s, k);
            }
            let dt = t0.elapsed().as_nanos();
            if use_on {
                t_on += dt;
            } else {
                t_off += dt;
            }
        }
    }
    let n = (ROUNDS as u128) * (BATCH as u128);
    (t_on / n, t_off / n)
}

fn report(label: &str, on_ns: u128, off_ns: u128) {
    println!(
        "{label}  on: {on_ns} ns/op   off: {off_ns} ns/op   delta {:+.2}%",
        (on_ns as f64 / off_ns as f64 - 1.0) * 100.0
    );
}

fn main() {
    let on = store(true);
    let off = store(false);
    let (p_on, p_off) = paired(&on, &off, |s, k| {
        std::hint::black_box(s.put(k, k));
    });
    report("put", p_on, p_off);
    let (g_on, g_off) = paired(&on, &off, |s, k| {
        std::hint::black_box(s.get(k));
    });
    report("get", g_on, g_off);
}
