//! # leap-skiplist — the evaluation's skip-list baselines
//!
//! The Leap-List paper (PODC 2013, §3.1) compares its structure against two
//! conventional skip-lists, both rebuilt here:
//!
//! * [`CasSkipList`] — *Skip-cas*: a lock-free skip-list in the style of
//!   Fraser's *Practical lock-freedom*, with one key-value pair per node,
//!   mutable (in-place updated) values, logical deletion via marked next
//!   pointers, and a **non-linearizable** range query that simply walks the
//!   bottom level with no consistency validation.
//! * [`TmSkipList`] — *Skip-tm*: the same abstract map with every operation
//!   (traversal included) wrapped in one `leap-stm` transaction, showing
//!   the cost of a fully instrumented traversal.
//!
//! Keys and values are `u64` words (as in the paper's C implementation).
//! Node memory is reclaimed through [`leap_ebr`].
//!
//! # Example
//!
//! ```
//! use leap_skiplist::CasSkipList;
//! let map = CasSkipList::new();
//! map.insert(10, 100);
//! map.insert(20, 200);
//! assert_eq!(map.lookup(10), Some(100));
//! assert_eq!(map.remove(10), Some(100));
//! assert_eq!(map.lookup(10), None);
//! let pairs = map.range_query_inconsistent(0, 100);
//! assert_eq!(pairs, vec![(20, 200)]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod cas;
mod level;
mod tm;

pub use cas::CasSkipList;
pub use level::{random_level, MAX_LEVEL};
pub use tm::TmSkipList;
