//! Geometric level generation shared by the skip-list baselines.

use rand::Rng;

/// Maximum tower height for the skip-list baselines. 2^32 expected elements
/// is far beyond the evaluation's 10M maximum.
pub const MAX_LEVEL: usize = 32;

/// Draws a tower height in `1..=max` with the classic geometric
/// distribution (p = 1/2), as in Pugh's original skip-list.
///
/// # Example
///
/// ```
/// use leap_skiplist::random_level;
/// let mut rng = rand::thread_rng();
/// let h = random_level(8, &mut rng);
/// assert!((1..=8).contains(&h));
/// ```
pub fn random_level<R: Rng + ?Sized>(max: usize, rng: &mut R) -> usize {
    debug_assert!(max >= 1);
    let bits: u64 = rng.gen();
    // trailing_ones of a uniform word is geometric(1/2).
    let h = bits.trailing_ones() as usize + 1;
    h.min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_in_bounds() {
        let mut rng = rand::thread_rng();
        for _ in 0..10_000 {
            let h = random_level(12, &mut rng);
            assert!((1..=12).contains(&h));
        }
    }

    #[test]
    fn distribution_is_roughly_geometric() {
        let mut rng = rand::thread_rng();
        let n = 100_000;
        let ones = (0..n)
            .filter(|_| random_level(MAX_LEVEL, &mut rng) == 1)
            .count();
        // P(h = 1) = 1/2; allow generous slack.
        assert!(
            (40_000..60_000).contains(&ones),
            "h=1 frequency {ones} out of expected ~50000"
        );
    }

    #[test]
    fn max_caps_height() {
        let mut rng = rand::thread_rng();
        for _ in 0..1000 {
            assert_eq!(random_level(1, &mut rng), 1);
        }
    }
}
