//! *Skip-tm*: a skip-list whose every operation — traversal included — runs
//! inside one `leap-stm` transaction, reproducing the paper's
//! GCC-TM-wrapped skip-list baseline. Operations are linearizable (range
//! queries return true snapshots) but pay one instrumented read per pointer
//! hop, which is exactly the overhead the evaluation quantifies.

use crate::level::{random_level, MAX_LEVEL};
use leap_ebr::pin;
use leap_stm::{Backoff, StmDomain, TVar, TaggedPtr, TxResult, Txn};

struct Node {
    key: u64,
    value: TVar<u64>,
    next: Box<[TVar<TaggedPtr<Node>>]>,
}

impl Node {
    fn new(key: u64, value: u64, height: usize) -> Box<Node> {
        Box::new(Node {
            key,
            value: TVar::new(value),
            next: (0..height).map(|_| TVar::new(TaggedPtr::null())).collect(),
        })
    }
}

/// A transactional skip-list map from `u64` keys to `u64` values — the
/// paper's *Skip-tm* baseline.
///
/// # Example
///
/// ```
/// use leap_skiplist::TmSkipList;
/// let m = TmSkipList::new();
/// m.insert(3, 30);
/// m.insert(4, 40);
/// assert_eq!(m.lookup(3), Some(30));
/// assert_eq!(m.range_query(0, 10), vec![(3, 30), (4, 40)]);
/// assert_eq!(m.remove(4), Some(40));
/// ```
pub struct TmSkipList {
    head: Box<Node>,
    domain: StmDomain,
    max_level: usize,
}

/// What happened inside one transactional attempt of `insert`.
enum InsertOutcome {
    Updated,
    /// Node was wired in; the raw pointer must be leaked on commit or
    /// reclaimed on abort.
    Linked(*mut Node),
}

impl TmSkipList {
    /// Creates an empty list with its own transactional domain.
    pub fn new() -> Self {
        Self::with_max_level(MAX_LEVEL)
    }

    /// Creates an empty list with towers capped at `max_level`.
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is 0 or exceeds [`MAX_LEVEL`].
    pub fn with_max_level(max_level: usize) -> Self {
        assert!((1..=MAX_LEVEL).contains(&max_level));
        TmSkipList {
            head: Node::new(0, 0, max_level),
            domain: StmDomain::new(),
            max_level,
        }
    }

    /// The transactional domain (for statistics).
    pub fn domain(&self) -> &StmDomain {
        &self.domain
    }

    /// Fully instrumented predecessor search.
    ///
    /// # Safety
    ///
    /// Caller holds an epoch guard; every dereferenced node stays alive
    /// because removal defers reclamation.
    unsafe fn search<'t>(
        &'t self,
        tx: &mut Txn<'t>,
        key: u64,
        preds: &mut [*const Node; MAX_LEVEL],
        succs: &mut [TaggedPtr<Node>; MAX_LEVEL],
    ) -> TxResult<Option<*mut Node>> {
        let mut pred: *const Node = &*self.head;
        for l in (0..self.max_level).rev() {
            // SAFETY: pred reachable under guard; the transaction validates
            // every pointer read at commit.
            let mut curr: TaggedPtr<Node> =
                // SAFETY: same guard-protected `pred` as the comment above.
                tx.read(unsafe { &*(&(*pred).next[l] as *const TVar<TaggedPtr<Node>>) })?;
            // SAFETY: non-null validated successors, guard-protected; `key`
            // is immutable.
            while !curr.is_null() && unsafe { &*curr.as_ptr() }.key < key {
                pred = curr.as_ptr();
                // SAFETY: `pred` was just observed reachable under the guard.
                curr = tx.read(unsafe { &*(&(*pred).next[l] as *const TVar<TaggedPtr<Node>>) })?;
            }
            preds[l] = pred;
            succs[l] = curr;
        }
        let f = succs[0];
        // SAFETY: non-null level-0 successor found under the guard.
        Ok(if !f.is_null() && unsafe { &*f.as_ptr() }.key == key {
            Some(f.as_ptr())
        } else {
            None
        })
    }

    /// Inserts or updates `key -> value` atomically. Returns `true` if a
    /// new node was inserted.
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let _guard = pin();
        let top = random_level(self.max_level, &mut rand::thread_rng());
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<InsertOutcome> = (|| {
                // SAFETY: `_guard` pins the epoch for the whole attempt.
                match unsafe { self.search(&mut tx, key, &mut preds, &mut succs) }? {
                    Some(n) => {
                        // SAFETY: node alive under guard.
                        tx.write(unsafe { &(*n).value }, value)?;
                        Ok(InsertOutcome::Updated)
                    }
                    None => {
                        let node = Node::new(key, value, top);
                        // Pre-publication stores: the node is private until
                        // the predecessor writes commit.
                        for (l, nxt) in node.next.iter().enumerate() {
                            nxt.naked_store(succs[l]);
                        }
                        let node_ptr = Box::into_raw(node);
                        // `l` indexes preds and the node's levels in
                        // lock-step; an iterator rewrite obscures that.
                        #[allow(clippy::needless_range_loop)]
                        for l in 0..top {
                            // SAFETY: `preds[l]` was filled by the search
                            // under the guard.
                            let slot = unsafe { &(*preds[l]).next[l] };
                            if let Err(e) = tx.write(slot, TaggedPtr::new(node_ptr)) {
                                // SAFETY: the write failed pre-commit, so
                                // the node was never published; this thread
                                // still owns it exclusively.
                                drop(unsafe { Box::from_raw(node_ptr) });
                                return Err(e);
                            }
                        }
                        Ok(InsertOutcome::Linked(node_ptr))
                    }
                }
            })();
            match body {
                Ok(outcome) => {
                    let committed = tx.commit().is_ok();
                    match (committed, outcome) {
                        (true, InsertOutcome::Updated) => return false,
                        (true, InsertOutcome::Linked(_)) => return true,
                        (false, InsertOutcome::Linked(p)) => {
                            // SAFETY: commit failed, so the node was never
                            // visible; this thread still owns it.
                            drop(unsafe { Box::from_raw(p) });
                        }
                        (false, InsertOutcome::Updated) => {}
                    }
                }
                Err(_) => drop(tx),
            }
            backoff.snooze();
        }
    }

    /// Removes `key` atomically, returning its value.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let guard = pin();
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<Option<(u64, *mut Node)>> = (|| {
                // SAFETY: `guard` pins the epoch for the whole attempt.
                match unsafe { self.search(&mut tx, key, &mut preds, &mut succs) }? {
                    None => Ok(None),
                    Some(n) => {
                        // SAFETY: node alive under guard.
                        let node = unsafe { &*n };
                        let value = tx.read(&node.value)?;
                        for l in 0..node.next.len() {
                            debug_assert_eq!(succs[l].as_ptr(), n, "tm list links all levels");
                            let after = tx.read(&node.next[l])?;
                            // SAFETY: `preds[l]` was filled by the search
                            // under the guard.
                            tx.write(unsafe { &(*preds[l]).next[l] }, after)?;
                        }
                        Ok(Some((value, n)))
                    }
                }
            })();
            match body {
                Ok(res) => {
                    if tx.commit().is_ok() {
                        return res.map(|(value, n)| {
                            // SAFETY: the committed writes unlinked `n` at
                            // every level; the grace period covers readers.
                            unsafe { guard.defer_drop_box(n) };
                            value
                        });
                    }
                }
                Err(_) => drop(tx),
            }
            backoff.snooze();
        }
    }

    /// Transactional lookup (consistent but fully instrumented).
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let _guard = pin();
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<Option<u64>> =
                // SAFETY: `_guard` pins the epoch for the whole attempt.
                (|| match unsafe { self.search(&mut tx, key, &mut preds, &mut succs) }? {
                    None => Ok(None),
                    // SAFETY: found node alive under the guard.
                    Some(n) => Ok(Some(tx.read(unsafe { &(*n).value })?)),
                })();
            if let Ok(v) = body {
                if tx.commit().is_ok() {
                    return v;
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Linearizable range query: one transaction spanning every key in
    /// `[lo, hi]` — the paper's direct-STM approach whose cost motivates
    /// the Leap-List design.
    pub fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let _guard = pin();
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<Vec<(u64, u64)>> = (|| {
                // SAFETY: `_guard` pins the epoch for the whole attempt.
                unsafe { self.search(&mut tx, lo, &mut preds, &mut succs) }?;
                let mut out = Vec::new();
                let mut curr = succs[0];
                while !curr.is_null() {
                    // SAFETY: nodes alive under guard; reads validated.
                    let c = unsafe { &*curr.as_ptr() };
                    if c.key > hi {
                        break;
                    }
                    out.push((c.key, tx.read(&c.value)?));
                    curr = tx.read(&c.next[0])?;
                }
                Ok(out)
            })();
            if let Ok(v) = body {
                if tx.commit().is_ok() {
                    return v;
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Number of keys (O(n); test/diagnostic helper).
    pub fn len(&self) -> usize {
        self.range_query(0, u64::MAX).len()
    }

    /// Whether the list holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TmSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TmSkipList {
    fn drop(&mut self) {
        let mut curr = self.head.next[0].naked_load().as_ptr();
        while !curr.is_null() {
            // SAFETY: `&mut self` proves exclusive access; linked nodes are
            // owned by the list.
            let next = unsafe { &*curr }.next[0].naked_load().as_ptr();
            // SAFETY: each linked node is freed exactly once here.
            drop(unsafe { Box::from_raw(curr) });
            curr = next;
        }
    }
}

impl std::fmt::Debug for TmSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmSkipList")
            .field("max_level", &self.max_level)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let m = TmSkipList::new();
        assert_eq!(m.lookup(5), None);
        assert!(m.insert(5, 50));
        assert!(!m.insert(5, 51));
        assert_eq!(m.lookup(5), Some(51));
        assert_eq!(m.remove(5), Some(51));
        assert_eq!(m.remove(5), None);
    }

    #[test]
    fn range_query_is_sorted_and_bounded() {
        let m = TmSkipList::new();
        for k in [9u64, 2, 7, 4, 11] {
            m.insert(k, k * 3);
        }
        assert_eq!(m.range_query(3, 9), vec![(4, 12), (7, 21), (9, 27)]);
        assert_eq!(m.range_query(100, 200), vec![]);
    }

    #[test]
    fn remove_interior_preserves_links() {
        let m = TmSkipList::new();
        for k in 0..32u64 {
            m.insert(k, k);
        }
        for k in (0..32u64).filter(|k| k % 3 == 0) {
            assert_eq!(m.remove(k), Some(k));
        }
        let remaining: Vec<u64> = m.range_query(0, 100).iter().map(|(k, _)| *k).collect();
        let expected: Vec<u64> = (0..32).filter(|k| k % 3 != 0).collect();
        assert_eq!(remaining, expected);
    }

    #[test]
    fn stats_visible_through_domain() {
        let m = TmSkipList::new();
        m.insert(1, 1);
        m.lookup(1);
        let s = m.domain().stats();
        assert!(s.total_commits() >= 2);
    }
}
