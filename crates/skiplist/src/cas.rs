//! *Skip-cas*: a lock-free skip-list with one mutable key-value pair per
//! node, in the style of Fraser's *Practical lock-freedom* (the paper's
//! reference [8]) and the Herlihy–Shavit lock-free skip-list.
//!
//! Deletion is logical-then-physical: a remover marks every `next` pointer
//! of the victim (top level down to level 0 last — the level-0 mark is the
//! linearization point), then re-runs `find`, which physically snips marked
//! nodes off the search path.
//!
//! # Reclamation protocol
//!
//! Nodes are freed through [`leap_ebr`], and the EBR contract requires a
//! node to be unreachable *before* it is retired. An insert that is still
//! lazily linking upper levels can re-link a node that a concurrent remover
//! has already unlinked, so retirement is handed off with a per-node state
//! machine: `INSERTING -> DONE` (by the inserter) or `-> DELETED` (by the
//! remover). Whichever side loses the race to set its terminal state runs
//! the final unlinking `find` and retires the node; the node is therefore
//! retired exactly once, by the last party that could have re-linked it.

use crate::level::{random_level, MAX_LEVEL};
use leap_ebr::pin;
use leap_stm::{TVar, TaggedPtr};
use std::sync::atomic::{AtomicU8, Ordering};

const INSERTING: u8 = 0;
const DONE: u8 = 1;
const DELETED: u8 = 2;

pub(crate) struct Node {
    key: u64,
    value: TVar<u64>,
    state: AtomicU8,
    next: Box<[TVar<TaggedPtr<Node>>]>,
}

impl Node {
    fn new(key: u64, value: u64, height: usize, state: u8) -> Box<Node> {
        Box::new(Node {
            key,
            value: TVar::new(value),
            state: AtomicU8::new(state),
            next: (0..height).map(|_| TVar::new(TaggedPtr::null())).collect(),
        })
    }

    fn height(&self) -> usize {
        self.next.len()
    }

    /// A node is logically deleted once its level-0 next pointer is marked.
    fn is_deleted(&self) -> bool {
        self.next[0].naked_load().is_marked()
    }
}

/// A lock-free skip-list map from `u64` keys to `u64` values — the paper's
/// *Skip-cas* baseline.
///
/// Values are mutable in place (an insert of an existing key updates it);
/// [`CasSkipList::range_query_inconsistent`] walks the bottom level with no
/// atomicity guarantee, exactly like the baseline the paper measures
/// against.
///
/// # Example
///
/// ```
/// use leap_skiplist::CasSkipList;
/// let m = CasSkipList::new();
/// assert!(m.insert(1, 10));
/// assert!(!m.insert(1, 11), "second insert updates in place");
/// assert_eq!(m.lookup(1), Some(11));
/// ```
pub struct CasSkipList {
    head: Box<Node>,
    max_level: usize,
}

impl CasSkipList {
    /// Creates an empty list with the default maximum tower height.
    pub fn new() -> Self {
        Self::with_max_level(MAX_LEVEL)
    }

    /// Creates an empty list with towers capped at `max_level`.
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is 0 or exceeds [`MAX_LEVEL`].
    pub fn with_max_level(max_level: usize) -> Self {
        assert!((1..=MAX_LEVEL).contains(&max_level));
        CasSkipList {
            head: Node::new(0, 0, max_level, DONE),
            max_level,
        }
    }

    /// Searches for `key`, filling `preds`/`succs` for levels below
    /// `max_level` and physically unlinking any marked node encountered.
    /// Returns the node with `key` if it is present and not logically
    /// deleted.
    ///
    /// # Safety
    ///
    /// Caller must hold an epoch guard for the duration of the call and for
    /// as long as it uses the returned pointers.
    unsafe fn find(
        &self,
        key: u64,
        preds: &mut [*const Node; MAX_LEVEL],
        succs: &mut [TaggedPtr<Node>; MAX_LEVEL],
    ) -> Option<*mut Node> {
        'retry: loop {
            let mut pred: *const Node = &*self.head;
            for l in (0..self.max_level).rev() {
                // SAFETY: pred is head or a node reached under the guard.
                let mut curr = unsafe { &*pred }.next[l].naked_load();
                if curr.is_marked() {
                    // pred was deleted under us; restart from the head.
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    let c = curr.as_ptr();
                    // SAFETY: c was reachable and we hold the guard.
                    let succ = unsafe { &*c }.next[l].naked_load();
                    if succ.is_marked() {
                        // c is logically deleted at this level: snip it.
                        let clean = TaggedPtr::new(succ.as_ptr());
                        // SAFETY: `pred` stays guard-protected (head or a
                        // node observed reachable above).
                        match unsafe { &*pred }.next[l].naked_compare_exchange(curr, clean) {
                            Ok(_) => {
                                curr = clean;
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    // SAFETY: `c` guard-protected; `key` is immutable.
                    if unsafe { &*c }.key < key {
                        pred = c;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[l] = pred;
                succs[l] = curr;
            }
            let f = succs[0];
            // SAFETY: non-null level-0 successor found under the guard.
            return if !f.is_null() && unsafe { &*f.as_ptr() }.key == key {
                Some(f.as_ptr())
            } else {
                None
            };
        }
    }

    /// Inserts `key -> value`; if the key is already present, updates the
    /// value in place (the paper's "mutable objects"). Returns `true` if a
    /// new node was inserted, `false` if an existing one was updated.
    pub fn insert(&self, key: u64, value: u64) -> bool {
        let guard = pin();
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        let mut rng = rand::thread_rng();
        loop {
            // SAFETY: `guard` pins the epoch for the whole loop body.
            if let Some(n) = unsafe { self.find(key, &mut preds, &mut succs) } {
                // SAFETY: returned under our guard.
                let node = unsafe { &*n };
                if !node.is_deleted() {
                    node.value.naked_store(value);
                    return false;
                }
                // Deletion in flight: retry until find stops returning it.
                continue;
            }
            let top = random_level(self.max_level, &mut rng);
            let node = Node::new(key, value, top, INSERTING);
            for (l, nxt) in node.next.iter().enumerate() {
                nxt.naked_store(succs[l]);
            }
            let node_ptr = Box::into_raw(node);
            // SAFETY: `preds[0]` was filled by `find` under `guard`.
            let linked = unsafe { &*preds[0] }.next[0]
                .naked_compare_exchange(succs[0], TaggedPtr::new(node_ptr))
                .is_ok();
            if !linked {
                // SAFETY: the CAS failed, so `node_ptr` was never
                // published; this thread still owns it exclusively.
                drop(unsafe { Box::from_raw(node_ptr) });
                continue;
            }
            // SAFETY: `node_ptr` is our freshly level-0-linked node and
            // `guard` is still held.
            unsafe { self.link_upper_levels(node_ptr, top, &mut preds, &mut succs) };
            // Reclamation handshake (see module docs): if a remover beat us
            // to the terminal state, the final unlink and retirement are
            // ours.
            // SAFETY: published node, guard-protected.
            let node = unsafe { &*node_ptr };
            if node
                .state
                .compare_exchange(INSERTING, DONE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // SAFETY: the remover set DELETED and skipped retirement
                // (module-docs handshake): the unlinking find runs under
                // `guard`, and retirement happens exactly once, here.
                unsafe {
                    self.find(key, &mut preds, &mut succs);
                    guard.defer_drop_box(node_ptr);
                }
            }
            return true;
        }
    }

    /// Lazily links `node` at levels `1..top`.
    ///
    /// # Safety
    ///
    /// `node` must be the caller's freshly level-0-linked node and the
    /// caller must hold a guard.
    unsafe fn link_upper_levels(
        &self,
        node: *mut Node,
        top: usize,
        preds: &mut [*const Node; MAX_LEVEL],
        succs: &mut [TaggedPtr<Node>; MAX_LEVEL],
    ) {
        // SAFETY: `node` is the caller's linked node (fn contract).
        let node_ref = unsafe { &*node };
        'levels: for l in 1..top {
            loop {
                let nl = node_ref.next[l].naked_load();
                if nl.is_marked() {
                    // A remover claimed the node: stop linking; the state
                    // handshake decides who retires it.
                    break 'levels;
                }
                if nl != succs[l] {
                    // Refresh our forward pointer before exposing it; a
                    // failure means a remover marked it concurrently.
                    if node_ref.next[l]
                        .naked_compare_exchange(nl, succs[l])
                        .is_err()
                    {
                        continue;
                    }
                }
                // SAFETY: `preds[l]` was filled by `find` under the
                // caller's guard.
                if unsafe { &*preds[l] }.next[l]
                    .naked_compare_exchange(succs[l], TaggedPtr::new(node))
                    .is_ok()
                {
                    break;
                }
                // The predecessor moved: recompute the insertion window.
                // SAFETY: caller's guard covers the re-run search.
                let f = unsafe { self.find(node_ref.key, preds, succs) };
                if f != Some(node) {
                    // The node vanished (removed) or was superseded.
                    break 'levels;
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    ///
    /// The linearization point is the successful mark of the level-0 next
    /// pointer.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let guard = pin();
        let mut preds = [std::ptr::null(); MAX_LEVEL];
        let mut succs = [TaggedPtr::null(); MAX_LEVEL];
        // SAFETY: `guard` pins the epoch for the whole removal.
        let n = unsafe { self.find(key, &mut preds, &mut succs) }?;
        // SAFETY: under guard.
        let node = unsafe { &*n };
        // Mark upper levels, top down.
        for l in (1..node.height()).rev() {
            loop {
                let s = node.next[l].naked_load();
                if s.is_marked() {
                    break;
                }
                if node.next[l].naked_compare_exchange(s, s.marked()).is_ok() {
                    break;
                }
            }
        }
        // Level 0 decides ownership of the removal.
        loop {
            let s = node.next[0].naked_load();
            if s.is_marked() {
                // Another remover won; for this caller the key is gone.
                return None;
            }
            if node.next[0].naked_compare_exchange(s, s.marked()).is_ok() {
                let value = node.value.naked_load();
                // Terminal-state handshake before the unlinking find: if the
                // inserter is still running it may re-link the node, so it
                // must be the one to retire it (after its own find).
                let prev = node.state.swap(DELETED, Ordering::AcqRel);
                // SAFETY: the unlinking find runs under `guard`; `n` is
                // retired only when the inserter already reached DONE (the
                // module-docs handshake), so exactly one party frees it.
                unsafe {
                    self.find(key, &mut preds, &mut succs);
                    if prev == DONE {
                        guard.defer_drop_box(n);
                    }
                }
                return Some(value);
            }
        }
    }

    /// Looks up `key` without helping (read-only traversal).
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let _guard = pin();
        let mut pred: *const Node = &*self.head;
        for l in (0..self.max_level).rev() {
            // SAFETY: nodes reachable under the guard; marked pointers are
            // stripped, which is fine for a read-only traversal.
            let mut curr = unsafe { &*pred }.next[l].naked_load().as_ptr();
            // SAFETY: every node on the walk was reachable under the guard;
            // `key` is immutable.
            while !curr.is_null() && unsafe { &*curr }.key < key {
                pred = curr;
                // SAFETY: `curr` is non-null and guard-protected.
                curr = unsafe { &*curr }.next[l].naked_load().as_ptr();
            }
            if !curr.is_null() {
                // SAFETY: non-null node reached under the guard.
                let c = unsafe { &*curr };
                if c.key == key {
                    if c.is_deleted() {
                        return None;
                    }
                    return Some(c.value.naked_load());
                }
            }
        }
        None
    }

    /// The paper's Skip-cas range query: walks the bottom level collecting
    /// keys in `[lo, hi]` with **no consistency validation** — concurrent
    /// updates can produce a result that never existed as a snapshot
    /// (explicitly called out as non-atomic in §3.1).
    pub fn range_query_inconsistent(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let _guard = pin();
        let mut out = Vec::new();
        let mut pred: *const Node = &*self.head;
        for l in (0..self.max_level).rev() {
            // SAFETY: `pred` is head or a node reached under the guard.
            let mut curr = unsafe { &*pred }.next[l].naked_load().as_ptr();
            // SAFETY: nodes on the walk are guard-protected; `key` is
            // immutable.
            while !curr.is_null() && unsafe { &*curr }.key < lo {
                pred = curr;
                // SAFETY: `curr` is non-null and guard-protected.
                curr = unsafe { &*curr }.next[l].naked_load().as_ptr();
            }
        }
        // SAFETY: `pred` is guard-protected (see the descent above).
        let mut curr = unsafe { &*pred }.next[0].naked_load().as_ptr();
        while !curr.is_null() {
            // SAFETY: non-null node reached under the guard.
            let c = unsafe { &*curr };
            if c.key > hi {
                break;
            }
            if c.key >= lo && !c.is_deleted() {
                out.push((c.key, c.value.naked_load()));
            }
            curr = c.next[0].naked_load().as_ptr();
        }
        out
    }

    /// Number of live keys (O(n); test/diagnostic helper).
    pub fn len(&self) -> usize {
        let _guard = pin();
        let mut n = 0;
        let mut curr = self.head.next[0].naked_load().as_ptr();
        while !curr.is_null() {
            // SAFETY: non-null node reached under `_guard`.
            let c = unsafe { &*curr };
            if !c.is_deleted() {
                n += 1;
            }
            curr = c.next[0].naked_load().as_ptr();
        }
        n
    }

    /// Whether the list holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CasSkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CasSkipList {
    fn drop(&mut self) {
        // Exclusive access: free every node still linked at level 0.
        // Unlinked nodes are owned by the EBR queues.
        let mut curr = self.head.next[0].naked_load().as_ptr();
        while !curr.is_null() {
            // SAFETY: `&mut self` proves exclusive access; linked nodes are
            // owned by the list.
            let next = unsafe { &*curr }.next[0].naked_load().as_ptr();
            // SAFETY: each linked node is freed exactly once here.
            drop(unsafe { Box::from_raw(curr) });
            curr = next;
        }
    }
}

impl std::fmt::Debug for CasSkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasSkipList")
            .field("max_level", &self.max_level)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let m = CasSkipList::new();
        assert_eq!(m.lookup(5), None);
        assert!(m.insert(5, 50));
        assert_eq!(m.lookup(5), Some(50));
        assert!(!m.insert(5, 51));
        assert_eq!(m.lookup(5), Some(51));
        assert_eq!(m.remove(5), Some(51));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.lookup(5), None);
    }

    #[test]
    fn ordered_bottom_level() {
        let m = CasSkipList::new();
        for k in [5u64, 1, 9, 3, 7] {
            m.insert(k, k * 10);
        }
        let all = m.range_query_inconsistent(0, u64::MAX);
        let keys: Vec<u64> = all.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn range_query_bounds_inclusive() {
        let m = CasSkipList::new();
        for k in 1..=10u64 {
            m.insert(k, k);
        }
        let r = m.range_query_inconsistent(3, 7);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn len_counts_live_keys() {
        let m = CasSkipList::new();
        assert!(m.is_empty());
        for k in 0..100u64 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 100);
        for k in 0..50u64 {
            m.remove((k * 2) % 100);
        }
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn keys_at_extremes() {
        let m = CasSkipList::new();
        m.insert(0, 1);
        m.insert(u64::MAX, 2);
        assert_eq!(m.lookup(0), Some(1));
        assert_eq!(m.lookup(u64::MAX), Some(2));
        assert_eq!(m.range_query_inconsistent(0, u64::MAX).len(), 2);
    }

    #[test]
    fn single_level_list_works() {
        let m = CasSkipList::with_max_level(1);
        for k in 0..64u64 {
            m.insert(k, k + 1);
        }
        for k in 0..64u64 {
            assert_eq!(m.lookup(k), Some(k + 1));
        }
        for k in (0..64u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k + 1));
        }
        assert_eq!(m.len(), 32);
    }
}
