//! Concurrent stress tests for the skip-list baselines.

use leap_skiplist::{CasSkipList, TmSkipList};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic per-thread xorshift.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn cas_concurrent_mixed_workload_is_consistent() {
    let map = Arc::new(CasSkipList::new());
    let inserted = Arc::new(AtomicU64::new(0));
    let removed = Arc::new(AtomicU64::new(0));
    let threads = 4;
    let iters = 5_000;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = map.clone();
            let inserted = inserted.clone();
            let removed = removed.clone();
            std::thread::spawn(move || {
                let mut rng = 0x1234_5678u64 + t as u64;
                for _ in 0..iters {
                    let k = xorshift(&mut rng) % 512;
                    match xorshift(&mut rng) % 3 {
                        0 => {
                            if map.insert(k, k * 2) {
                                inserted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        1 => {
                            if map.remove(k).is_some() {
                                removed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            if let Some(v) = map.lookup(k) {
                                assert_eq!(v, k * 2, "value corrupted for key {k}");
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected = inserted.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed);
    assert_eq!(map.len() as u64, expected, "insert/remove accounting drift");
    // Bottom level must remain sorted and duplicate-free.
    let all = map.range_query_inconsistent(0, u64::MAX);
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0, "bottom level out of order: {:?}", w);
    }
}

#[test]
fn cas_contended_single_key_insert_remove() {
    // Hammering one key maximizes insert/remove handshake races (the
    // reclamation state machine).
    let map = Arc::new(CasSkipList::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    if (t + i) % 2 == 0 {
                        map.insert(42, i);
                    } else {
                        map.remove(42);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The map must still be structurally sound.
    map.insert(42, 7);
    assert_eq!(map.lookup(42), Some(7));
    assert_eq!(map.remove(42), Some(7));
    assert_eq!(map.lookup(42), None);
}

#[test]
fn tm_concurrent_counters_no_lost_updates() {
    // Each key's value is incremented transactionally; the total must be
    // exact (lost updates would show as a shortfall).
    let map = Arc::new(TmSkipList::new());
    for k in 0..16u64 {
        map.insert(k, 0);
    }
    let threads = 4;
    let iters = 1_000;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0x9E37_79B9u64 * (t as u64 + 1);
                for _ in 0..iters {
                    let k = xorshift(&mut rng) % 16;
                    let v = map.lookup(k).unwrap();
                    map.insert(k, v + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // insert-as-update is last-writer-wins, so we can only check
    // structural invariants here: all 16 keys present, sorted range.
    let all = map.range_query(0, 100);
    assert_eq!(all.len(), 16);
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

#[test]
fn tm_range_queries_see_atomic_pair_updates() {
    // Writer keeps keys (1, 2) equal via two separate inserts in... NOT
    // atomic. Instead use remove+insert of the same key and assert a range
    // query never sees both generations or neither.
    let map = Arc::new(TmSkipList::new());
    map.insert(10, 0);
    map.insert(20, 0);
    let stop = Arc::new(AtomicU64::new(0));

    let writer = {
        let map = map.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for gen in 1..500u64 {
                // Move both keys to the new generation, one transactional
                // remove + insert each. Individual ops are atomic; the pair
                // is not, so the reader checks a weaker but still strict
                // invariant: values are monotonically non-decreasing.
                map.insert(10, gen);
                map.insert(20, gen);
            }
            stop.store(1, Ordering::Release);
        })
    };
    let mut last10 = 0;
    let mut last20 = 0;
    while stop.load(Ordering::Acquire) == 0 {
        let r = map.range_query(0, 100);
        assert_eq!(r.len(), 2, "keys must never disappear");
        let v10 = r[0].1;
        let v20 = r[1].1;
        assert!(v10 >= last10 && v20 >= last20, "non-monotonic snapshot");
        // Within one snapshot, key 10 is written first, so v10 >= v20 - 0
        // and v20 can lag at most one generation behind v10... but since
        // the two inserts are separate transactions the only strict
        // invariant is v10 >= v20 (writer order) within a snapshot.
        assert!(
            v10 >= v20,
            "snapshot inverted writer order: v10={v10} v20={v20}"
        );
        last10 = v10;
        last20 = v20;
    }
    writer.join().unwrap();
}

#[test]
fn cas_skiplist_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CasSkipList>();
    assert_send_sync::<TmSkipList>();
}
