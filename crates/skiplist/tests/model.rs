//! Model-based property tests: both skip-lists must agree with `BTreeMap`
//! over arbitrary operation sequences (single-threaded).

use leap_skiplist::{CasSkipList, TmSkipList};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Narrow key space to force collisions, updates and removals of
    // existing keys.
    let key = 0..64u64;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.clone().prop_map(Op::Lookup),
        (key.clone(), 0..32u64).prop_map(|(a, w)| Op::Range(a, a + w)),
    ]
}

fn check_against_model<M>(
    ops: &[Op],
    insert: impl Fn(&M, u64, u64) -> bool,
    remove: impl Fn(&M, u64) -> Option<u64>,
    lookup: impl Fn(&M, u64) -> Option<u64>,
    range: impl Fn(&M, u64, u64) -> Vec<(u64, u64)>,
    map: M,
) -> Result<(), TestCaseError> {
    let mut model = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let fresh = insert(&map, k, v);
                let was = model.insert(k, v);
                prop_assert_eq!(fresh, was.is_none(), "insert freshness for key {}", k);
            }
            Op::Remove(k) => {
                prop_assert_eq!(remove(&map, k), model.remove(&k));
            }
            Op::Lookup(k) => {
                prop_assert_eq!(lookup(&map, k), model.get(&k).copied());
            }
            Op::Range(lo, hi) => {
                let got = range(&map, lo, hi);
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want, "range [{}, {}]", lo, hi);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cas_skiplist_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        check_against_model(
            &ops,
            |m: &CasSkipList, k, v| m.insert(k, v),
            |m, k| m.remove(k),
            |m, k| m.lookup(k),
            |m, lo, hi| m.range_query_inconsistent(lo, hi),
            CasSkipList::new(),
        )?;
    }

    #[test]
    fn tm_skiplist_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        check_against_model(
            &ops,
            |m: &TmSkipList, k, v| m.insert(k, v),
            |m, k| m.remove(k),
            |m, k| m.lookup(k),
            |m, lo, hi| m.range_query(lo, hi),
            TmSkipList::new(),
        )?;
    }

    #[test]
    fn cas_low_towers_match_btreemap(ops in prop::collection::vec(op_strategy(), 1..150)) {
        // Degenerate tower heights exercise the linked-list fallback paths.
        check_against_model(
            &ops,
            |m: &CasSkipList, k, v| m.insert(k, v),
            |m, k| m.remove(k),
            |m, k| m.lookup(k),
            |m, lo, hi| m.range_query_inconsistent(lo, hi),
            CasSkipList::with_max_level(2),
        )?;
    }
}
