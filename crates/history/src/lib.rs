//! # leap-history — record concurrent histories, check them offline
//!
//! The dbcop lineage of database testing (Biswas & Enea's dbcop, the
//! checkers behind Bundled References and Skip Hash) validates
//! linearizable range-query claims the honest way: record every
//! operation's **invocation and response** from a real concurrent run,
//! then verify offline that the history has a serialization — a total
//! order of the operations that (a) respects real time (an operation that
//! returned before another was invoked must precede it) and (b) replays
//! correctly against the sequential model. Because every operation here
//! is a single atomic action, that property is **strict serializability
//! = linearizability**, which implies plain serializability.
//!
//! This crate is the test-support half of that methodology for the
//! LeapStore / leap-memdb stack:
//!
//! * [`Recorder`] / [`Session`] — one session per worker thread; each
//!   operation is stamped with invocation/response times drawn from one
//!   global atomic clock and logged locally (no cross-thread contention
//!   beyond the clock).
//! * [`check`] — a Wing&Gong-style search with memoization: explore
//!   linearization orders lazily, one per-session frontier at a time,
//!   replaying candidate operations against a [`BTreeMap`] model and
//!   pruning orders whose replay contradicts a recorded response.
//!
//! The model is a map from `u64` keys to **packed fixed-width tuples** in
//! a `u64` — exactly the shape of `leap-memdb` rows (and a plain store
//! value is the trivial one-field tuple). [`Op::Rmw`] and
//! [`Op::FieldRange`] express a table's `update_column` and `scan_by` in
//! that encoding; plain stores use [`Op::Put`]/[`Op::Get`]/[`Op::Range`]/
//! [`Op::Batch`].
//!
//! # Snapshot isolation
//!
//! The stack's pinned-timestamp scans (`LeapStore::scan_snapshot`,
//! `Table::scan_by_snapshot`) claim more than per-page consistency: the
//! **whole multi-page scan** observes one instant. [`check_snapshot_isolation`]
//! verifies that claim from a recorded run. Each scan is recorded as ONE
//! event via [`Session::snapshot_scan`] — invocation stamped before the
//! timestamp is pinned, response after the last page, result the merged
//! pages plus the pinned timestamp. The checker then requires (a) a
//! serialization in which every scan is one **atomic** range read — a
//! paged scan whose pages mixed two instants has no such serialization —
//! where writes respect real time strictly and a scan may only trail it
//! (the pin can lag a just-responded write while an earlier commit is
//! still wiring: SI, not strict serializability, on the read path),
//! (b) pinned timestamps that never run backwards across real time, and
//! (c) identical results from scans that pinned the same timestamp over
//! the same range.
//!
//! # Example
//!
//! ```
//! use leap_history::{check, Op, Recorder};
//! use std::collections::BTreeMap;
//! use std::sync::Mutex;
//!
//! let map = Mutex::new(BTreeMap::new());
//! let rec = Recorder::new();
//! let mut s = rec.session();
//! s.put(3, 30, || map.lock().unwrap().insert(3, 30));
//! s.range(0, 9, || {
//!     map.lock().unwrap().range(0..=9).map(|(&k, &v)| (k, v)).collect()
//! });
//! drop(s);
//! let report = check(&rec.history(), &BTreeMap::new()).unwrap();
//! assert_eq!(report.events, 2);
//! ```

#![deny(missing_docs)]

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One fixed-width bit-field of a packed tuple value: bits
/// `[shift, shift + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Field {
    /// Bit offset of the field.
    pub shift: u32,
    /// Field width in bits (1..=64).
    pub width: u32,
}

impl Field {
    /// A field at `shift` of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the field does not fit in 64 bits.
    pub fn new(shift: u32, width: u32) -> Self {
        assert!(width >= 1 && shift + width <= 64, "field out of bounds");
        Field { shift, width }
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            ((1u64 << self.width) - 1) << self.shift
        }
    }

    /// Extracts the field from a packed value.
    pub fn of(&self, v: u64) -> u64 {
        (v & self.mask()) >> self.shift
    }

    /// The packed value with this field replaced by `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` does not fit the field.
    pub fn set(&self, v: u64, to: u64) -> u64 {
        assert!(
            self.width == 64 || to < (1u64 << self.width),
            "value {to} exceeds {} bits",
            self.width
        );
        (v & !self.mask()) | (to << self.shift)
    }
}

/// One recorded operation (what was asked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point read of `key`.
    Get(u64),
    /// Write `key -> value`; responds with the previous value.
    Put(u64, u64),
    /// Remove `key`; responds with the removed value.
    Delete(u64),
    /// Snapshot of all pairs with keys in `[lo, hi]`, ascending.
    Range(u64, u64),
    /// One atomic batch, applied in order: `Some(v)` puts, `None`
    /// deletes; responds with per-component previous values.
    Batch(Vec<(u64, Option<u64>)>),
    /// Read-modify-write of one field of `key`'s packed tuple; responds
    /// with the **new** full tuple, or `None` if the key was absent (in
    /// which case nothing changed).
    Rmw {
        /// The key whose tuple is rewritten.
        key: u64,
        /// The field replaced.
        field: Field,
        /// The field's new value.
        to: u64,
    },
    /// Snapshot of all pairs whose tuple `field` lies in `[lo, hi]`,
    /// ordered by `(field value, key)` — a secondary-index scan.
    FieldRange {
        /// The field scanned.
        field: Field,
        /// Lowest matching field value.
        lo: u64,
        /// Highest matching field value (inclusive).
        hi: u64,
    },
    /// A whole multi-page snapshot-isolated scan of `[lo, hi]`, collapsed
    /// to one event: the response is the merged pages, which must all
    /// have read the database at the one pinned commit timestamp `ts`.
    /// Replays exactly like [`Op::Range`], except the search may place it
    /// **before its invocation**: a pinned snapshot is allowed to trail
    /// writes that committed with a higher timestamp while an earlier
    /// commit was still wiring — snapshot isolation, not strict
    /// serializability, on the read path. `ts` additionally feeds the
    /// axioms of [`check_snapshot_isolation`].
    SnapshotScan {
        /// Lowest key scanned.
        lo: u64,
        /// Highest key scanned (inclusive).
        hi: u64,
        /// The commit timestamp the scan pinned.
        ts: u64,
    },
}

/// One recorded response (what came back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ret {
    /// A single optional value (get result, put/delete previous, rmw new).
    Value(Option<u64>),
    /// A consistent snapshot of pairs.
    Snapshot(Vec<(u64, u64)>),
    /// Per-component previous values of a batch.
    Values(Vec<Option<u64>>),
}

/// One operation with its response and its invocation/response stamps
/// from the recorder's global clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The operation.
    pub op: Op,
    /// Its recorded response.
    pub ret: Ret,
    /// Clock value drawn at invocation.
    pub inv: u64,
    /// Clock value drawn at response.
    pub res: u64,
}

/// A complete recorded history: one event sequence per session (thread),
/// each in program order.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Per-session event logs.
    pub sessions: Vec<Vec<Event>>,
}

impl History {
    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The shared recording context: a global invocation/response clock plus
/// the collected session logs.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    log: Mutex<Vec<Vec<Event>>>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Recorder::default())
    }

    /// Opens a session. Each concurrent worker records through its own
    /// session; the session's events flush into the recorder when the
    /// session drops.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            recorder: self.clone(),
            events: Vec::new(),
        }
    }

    /// The history recorded so far. Call after every session has been
    /// dropped (events flush on session drop).
    pub fn history(&self) -> History {
        History {
            sessions: self
                .log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }
}

/// One thread's recording handle (see [`Recorder::session`]).
#[derive(Debug)]
pub struct Session {
    recorder: Arc<Recorder>,
    events: Vec<Event>,
}

impl Session {
    /// Stamps an invocation. Pair with [`Session::resolve`] for
    /// operations whose [`Op`] is only known after the call returns
    /// (e.g. an insert that allocates its row id).
    pub fn invoke(&self) -> u64 {
        self.recorder.tick()
    }

    /// Records `op` with response `ret`, stamping the response time now.
    pub fn resolve(&mut self, inv: u64, op: Op, ret: Ret) {
        let res = self.recorder.tick();
        debug_assert!(inv < res, "resolve before invoke");
        self.events.push(Event { op, ret, inv, res });
    }

    /// Runs and records a point read.
    pub fn get(&mut self, key: u64, f: impl FnOnce() -> Option<u64>) -> Option<u64> {
        let inv = self.invoke();
        let got = f();
        self.resolve(inv, Op::Get(key), Ret::Value(got));
        got
    }

    /// Runs and records a put (the closure returns the previous value).
    pub fn put(&mut self, key: u64, value: u64, f: impl FnOnce() -> Option<u64>) -> Option<u64> {
        let inv = self.invoke();
        let prev = f();
        self.resolve(inv, Op::Put(key, value), Ret::Value(prev));
        prev
    }

    /// Runs and records a delete (the closure returns the removed value).
    pub fn delete(&mut self, key: u64, f: impl FnOnce() -> Option<u64>) -> Option<u64> {
        let inv = self.invoke();
        let prev = f();
        self.resolve(inv, Op::Delete(key), Ret::Value(prev));
        prev
    }

    /// Runs and records a range snapshot.
    pub fn range(&mut self, lo: u64, hi: u64, f: impl FnOnce() -> Vec<(u64, u64)>) {
        let inv = self.invoke();
        let snap = f();
        self.resolve(inv, Op::Range(lo, hi), Ret::Snapshot(snap));
    }

    /// Runs and records an atomic batch (the closure returns per-component
    /// previous values, in input order).
    pub fn batch(&mut self, parts: Vec<(u64, Option<u64>)>, f: impl FnOnce() -> Vec<Option<u64>>) {
        let inv = self.invoke();
        let prevs = f();
        self.resolve(inv, Op::Batch(parts), Ret::Values(prevs));
    }

    /// Runs and records a field read-modify-write (the closure returns
    /// the new full tuple, or `None` if the key was absent).
    pub fn rmw(
        &mut self,
        key: u64,
        field: Field,
        to: u64,
        f: impl FnOnce() -> Option<u64>,
    ) -> Option<u64> {
        let inv = self.invoke();
        let new = f();
        self.resolve(inv, Op::Rmw { key, field, to }, Ret::Value(new));
        new
    }

    /// Runs and records a whole snapshot-isolated paged scan as ONE
    /// event: the closure pins the timestamp, drives **every** page, and
    /// returns `(pinned ts, merged pages)`; the invocation stamp
    /// precedes the pin and the response stamp follows the last page.
    /// Returns the pinned timestamp.
    pub fn snapshot_scan(
        &mut self,
        lo: u64,
        hi: u64,
        f: impl FnOnce() -> (u64, Vec<(u64, u64)>),
    ) -> u64 {
        let inv = self.invoke();
        let (ts, snap) = f();
        self.resolve(inv, Op::SnapshotScan { lo, hi, ts }, Ret::Snapshot(snap));
        ts
    }

    /// Runs and records a secondary-index scan: all pairs whose `field`
    /// lies in `[lo, hi]`, ordered by `(field value, key)`.
    pub fn field_range(
        &mut self,
        field: Field,
        lo: u64,
        hi: u64,
        f: impl FnOnce() -> Vec<(u64, u64)>,
    ) {
        let inv = self.invoke();
        let snap = f();
        self.resolve(inv, Op::FieldRange { field, lo, hi }, Ret::Snapshot(snap));
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.recorder
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(std::mem::take(&mut self.events));
    }
}

/// Statistics of a successful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Events in the history.
    pub events: usize,
    /// Search states explored before a serialization was found.
    pub states: usize,
}

/// Why a check failed.
#[derive(Debug, Clone)]
pub enum Violation {
    /// No serialization exists: every real-time-respecting order
    /// contradicts some recorded response. Carries the frontier events
    /// (one per unfinished session) at the search's deepest progress —
    /// the operations among which the contradiction lives.
    NotSerializable {
        /// Events linearized at the deepest point reached.
        depth: usize,
        /// Total events.
        events: usize,
        /// The per-session next events at the deepest stuck frontier.
        frontier: Vec<Event>,
    },
    /// The state budget was exhausted before the search concluded —
    /// shrink the workload (fewer ops/threads) rather than raising it.
    BudgetExhausted {
        /// States explored.
        states: usize,
    },
    /// Two snapshot scans' pinned timestamps contradict real time: the
    /// first finished before the second began yet pinned a **later**
    /// timestamp — the snapshot clock ran backwards.
    SnapshotRegression {
        /// The scan that finished first.
        earlier: Box<Event>,
        /// The later scan, which pinned the smaller timestamp.
        later: Box<Event>,
    },
    /// Two snapshot scans pinned the **same** timestamp over the same
    /// range but observed different states — the pinned instant is not a
    /// single consistent cut.
    SnapshotDivergence {
        /// One of the scans.
        a: Box<Event>,
        /// The other.
        b: Box<Event>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotSerializable {
                depth,
                events,
                frontier,
            } => {
                writeln!(
                    f,
                    "history is not serializable: stuck after {depth}/{events} events; frontier:"
                )?;
                for e in frontier {
                    writeln!(f, "  [{}..{}] {:?} -> {:?}", e.inv, e.res, e.op, e.ret)?;
                }
                Ok(())
            }
            Violation::BudgetExhausted { states } => {
                write!(f, "checker state budget exhausted after {states} states")
            }
            Violation::SnapshotRegression { earlier, later } => {
                writeln!(f, "snapshot timestamps ran backwards across real time:")?;
                writeln!(f, "  [{}..{}] {:?}", earlier.inv, earlier.res, earlier.op)?;
                write!(f, "  [{}..{}] {:?}", later.inv, later.res, later.op)
            }
            Violation::SnapshotDivergence { a, b } => {
                writeln!(
                    f,
                    "equal-timestamp snapshot scans observed different states:"
                )?;
                writeln!(f, "  [{}..{}] {:?} -> {:?}", a.inv, a.res, a.op, a.ret)?;
                write!(f, "  [{}..{}] {:?} -> {:?}", b.inv, b.res, b.op, b.ret)
            }
        }
    }
}

/// Default state budget for [`check`] (see
/// [`Violation::BudgetExhausted`]).
pub const DEFAULT_STATE_BUDGET: usize = 1 << 22;

/// Applies `op` to `model` if the recorded `ret` matches the model's
/// answer; returns the undo list on success.
fn replay(op: &Op, ret: &Ret, model: &mut BTreeMap<u64, u64>) -> Option<Vec<(u64, Option<u64>)>> {
    match (op, ret) {
        (Op::Get(k), Ret::Value(got)) => (model.get(k).copied() == *got).then(Vec::new),
        (Op::Put(k, v), Ret::Value(prev)) => {
            let old = model.get(k).copied();
            if old != *prev {
                return None;
            }
            model.insert(*k, *v);
            Some(vec![(*k, old)])
        }
        (Op::Delete(k), Ret::Value(prev)) => {
            let old = model.get(k).copied();
            if old != *prev {
                return None;
            }
            model.remove(k);
            Some(vec![(*k, old)])
        }
        (Op::Range(lo, hi), Ret::Snapshot(snap))
        | (Op::SnapshotScan { lo, hi, .. }, Ret::Snapshot(snap)) => {
            let mut want = model.range(lo..=hi).map(|(&k, &v)| (k, v));
            let mut got = snap.iter().copied();
            loop {
                match (want.next(), got.next()) {
                    (None, None) => return Some(Vec::new()),
                    (w, g) if w == g => continue,
                    _ => return None,
                }
            }
        }
        (Op::Batch(parts), Ret::Values(prevs)) => {
            if parts.len() != prevs.len() {
                return None;
            }
            let mut undo = Vec::with_capacity(parts.len());
            for ((k, v), want_prev) in parts.iter().zip(prevs) {
                let old = model.get(k).copied();
                if old != *want_prev {
                    // Roll back the components already applied.
                    for (k, old) in undo.into_iter().rev() {
                        restore(model, k, old);
                    }
                    return None;
                }
                undo.push((*k, old));
                match v {
                    Some(v) => {
                        model.insert(*k, *v);
                    }
                    None => {
                        model.remove(k);
                    }
                }
            }
            Some(undo)
        }
        (Op::Rmw { key, field, to }, Ret::Value(new)) => match model.get(key).copied() {
            None => new.is_none().then(Vec::new),
            Some(old) => {
                let updated = field.set(old, *to);
                if *new != Some(updated) {
                    return None;
                }
                model.insert(*key, updated);
                Some(vec![(*key, Some(old))])
            }
        },
        (Op::FieldRange { field, lo, hi }, Ret::Snapshot(snap)) => {
            let mut want: Vec<(u64, u64)> = model
                .iter()
                .filter(|(_, &v)| (*lo..=*hi).contains(&field.of(v)))
                .map(|(&k, &v)| (k, v))
                .collect();
            want.sort_by_key(|&(k, v)| (field.of(v), k));
            (want == *snap).then(Vec::new)
        }
        _ => None, // Op/Ret shape mismatch: the recording itself is broken.
    }
}

fn restore(model: &mut BTreeMap<u64, u64>, k: u64, old: Option<u64>) {
    match old {
        Some(v) => {
            model.insert(k, v);
        }
        None => {
            model.remove(&k);
        }
    }
}

/// Checks that `history` is strictly serializable (linearizable) against
/// a sequential map starting from `initial`, with the default state
/// budget. See the crate docs for the algorithm.
///
/// # Errors
///
/// [`Violation::NotSerializable`] when no valid order exists,
/// [`Violation::BudgetExhausted`] when the search grew too large.
pub fn check(history: &History, initial: &BTreeMap<u64, u64>) -> Result<CheckReport, Violation> {
    check_bounded(history, initial, DEFAULT_STATE_BUDGET)
}

/// Checks the stack's **snapshot-isolation** claims over a history of
/// writers racing whole multi-page scans recorded via
/// [`Session::snapshot_scan`] (see the crate docs):
///
/// 1. **Scan atomicity** — the history must serialize with every scan as
///    one atomic range read, writes strictly real-time-ordered, scans
///    allowed to read slightly in the past (delegates to [`check`]; a
///    scan whose pages mixed two instants has no serialization).
/// 2. **Pin monotonicity** — a scan that responded before another was
///    invoked must pin a timestamp no later than the other's.
/// 3. **Pin determinism** — scans that pinned the same timestamp must
///    agree exactly on the intersection of their ranges.
///
/// # Errors
///
/// [`Violation::SnapshotRegression`] / [`Violation::SnapshotDivergence`]
/// on a timestamp-axiom breach, otherwise as for [`check`].
pub fn check_snapshot_isolation(
    history: &History,
    initial: &BTreeMap<u64, u64>,
) -> Result<CheckReport, Violation> {
    let scans: Vec<&Event> = history
        .sessions
        .iter()
        .flatten()
        .filter(|e| matches!(e.op, Op::SnapshotScan { .. }))
        .collect();
    fn parts(e: &Event) -> (u64, u64, u64, &Vec<(u64, u64)>) {
        match (&e.op, &e.ret) {
            (&Op::SnapshotScan { lo, hi, ts }, Ret::Snapshot(snap)) => (lo, hi, ts, snap),
            _ => unreachable!("filtered to snapshot scans"),
        }
    }
    for (i, &a) in scans.iter().enumerate() {
        let (alo, ahi, ats, asnap) = parts(a);
        for &b in &scans[i + 1..] {
            let (blo, bhi, bts, bsnap) = parts(b);
            if a.res < b.inv && ats > bts {
                return Err(Violation::SnapshotRegression {
                    earlier: Box::new(a.clone()),
                    later: Box::new(b.clone()),
                });
            }
            if b.res < a.inv && bts > ats {
                return Err(Violation::SnapshotRegression {
                    earlier: Box::new(b.clone()),
                    later: Box::new(a.clone()),
                });
            }
            let (ilo, ihi) = (alo.max(blo), ahi.min(bhi));
            if ats == bts && ilo <= ihi {
                let clip = |snap: &[(u64, u64)]| -> Vec<(u64, u64)> {
                    snap.iter()
                        .copied()
                        .filter(|&(k, _)| (ilo..=ihi).contains(&k))
                        .collect()
                };
                if clip(asnap) != clip(bsnap) {
                    return Err(Violation::SnapshotDivergence {
                        a: Box::new(a.clone()),
                        b: Box::new(b.clone()),
                    });
                }
            }
        }
    }
    check(history, initial)
}

/// [`check`] with an explicit state budget.
///
/// # Errors
///
/// As for [`check`].
pub fn check_bounded(
    history: &History,
    initial: &BTreeMap<u64, u64>,
    budget: usize,
) -> Result<CheckReport, Violation> {
    let sessions: Vec<&[Event]> = history
        .sessions
        .iter()
        .map(Vec::as_slice)
        .filter(|s| !s.is_empty())
        .collect();
    let events: usize = sessions.iter().map(|s| s.len()).sum();
    let mut search = Search {
        sessions,
        model: initial.clone(),
        heads: Vec::new(),
        seen: HashSet::new(),
        states: 0,
        budget,
        deepest: 0,
        deepest_heads: Vec::new(),
    };
    search.heads = vec![0; search.sessions.len()];
    match search.dfs(0) {
        Ok(true) => Ok(CheckReport {
            events,
            states: search.states,
        }),
        Ok(false) => {
            let frontier = search
                .sessions
                .iter()
                .zip(&search.deepest_heads)
                .filter_map(|(s, &h)| s.get(h).cloned())
                .collect();
            Err(Violation::NotSerializable {
                depth: search.deepest,
                events,
                frontier,
            })
        }
        Err(()) => Err(Violation::BudgetExhausted {
            states: search.states,
        }),
    }
}

/// One visited search state: the per-session frontier plus a 128-bit
/// fingerprint of the model's contents when it was reached. The
/// fingerprint keeps memo memory proportional to the state count (tens
/// of bytes per state instead of a full map clone); a collision could
/// only make the search *skip* a state — at ~2⁻¹²⁸ per pair it is far
/// below any realistic flakiness budget.
type SeenState = (Vec<usize>, u64, u64);

/// Two independent FNV/xxhash-style folds over the map's `(key, value)`
/// stream (order is canonical — `BTreeMap` iterates sorted).
fn model_fingerprint(model: &BTreeMap<u64, u64>) -> (u64, u64) {
    let (mut h1, mut h2) = (0xcbf2_9ce4_8422_2325u64, 0x9e37_79b9_7f4a_7c15u64);
    for (&k, &v) in model {
        for w in [k, v] {
            h1 = (h1 ^ w).wrapping_mul(0x0000_0100_0000_01b3);
            h2 = (h2 ^ w.rotate_left(17)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
        }
    }
    (h1, h2)
}

struct Search<'a> {
    sessions: Vec<&'a [Event]>,
    model: BTreeMap<u64, u64>,
    heads: Vec<usize>,
    /// Visited (heads, model) states — orders that converge to the same
    /// frontier and map need exploring only once.
    seen: HashSet<SeenState>,
    states: usize,
    budget: usize,
    deepest: usize,
    deepest_heads: Vec<usize>,
}

impl Search<'_> {
    /// Returns `Ok(true)` if the remaining events linearize, `Ok(false)`
    /// if not, `Err(())` on budget exhaustion.
    fn dfs(&mut self, done: usize) -> Result<bool, ()> {
        if done > self.deepest {
            self.deepest = done;
            self.deepest_heads = self.heads.clone();
        }
        // Minimal events: each session's next event, except those whose
        // invocation lies after some other pending event's response
        // (that event must be linearized first). The minimum pending
        // response bounds the candidates: within a session inv/res are
        // increasing, so only heads can be minimal.
        let mut min_res = u64::MAX;
        let mut exhausted = true;
        for (s, &h) in self.sessions.iter().zip(&self.heads) {
            if let Some(e) = s.get(h) {
                exhausted = false;
                min_res = min_res.min(e.res);
            }
        }
        if exhausted {
            return Ok(true);
        }
        self.states += 1;
        if self.states > self.budget {
            return Err(());
        }
        for i in 0..self.sessions.len() {
            let Some(e) = self.sessions[i].get(self.heads[i]) else {
                continue;
            };
            // A snapshot scan's read point is its PIN, which may trail a
            // write that responded just before the scan was invoked (the
            // pin excludes commits above a still-wiring transaction), so
            // a scan may linearize before its invocation. Every other op
            // respects real time strictly.
            let stale_ok = matches!(e.op, Op::SnapshotScan { .. });
            if !stale_ok && e.inv > min_res {
                continue; // Blocked behind a pending response.
            }
            let Some(undo) = replay(&e.op, &e.ret, &mut self.model) else {
                continue; // This order contradicts the recorded response.
            };
            self.heads[i] += 1;
            let (h1, h2) = model_fingerprint(&self.model);
            let novel = self.seen.insert((self.heads.clone(), h1, h2));
            let found = if novel { self.dfs(done + 1)? } else { false };
            if found {
                return Ok(true);
            }
            self.heads[i] -= 1;
            for (k, old) in undo.into_iter().rev() {
                restore(&mut self.model, k, old);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: Op, ret: Ret, inv: u64, res: u64) -> Event {
        Event { op, ret, inv, res }
    }

    #[test]
    fn fields_pack_and_unpack() {
        let age = Field::new(0, 28);
        let user = Field::new(28, 28);
        let v = user.set(age.set(0, 33), 1001);
        assert_eq!(age.of(v), 33);
        assert_eq!(user.of(v), 1001);
        assert_eq!(age.set(v, 34), user.set(age.set(0, 34), 1001));
        let whole = Field::new(0, 64);
        assert_eq!(whole.of(u64::MAX), u64::MAX);
        assert_eq!(whole.set(3, u64::MAX), u64::MAX);
    }

    #[test]
    fn sequential_history_passes() {
        let rec = Recorder::new();
        let mut s = rec.session();
        assert_eq!(s.put(1, 10, || None), None);
        assert_eq!(s.get(1, || Some(10)), Some(10));
        assert_eq!(s.delete(1, || Some(10)), Some(10));
        s.range(0, 9, Vec::new);
        drop(s);
        let h = rec.history();
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        let report = check(&h, &BTreeMap::new()).expect("valid history");
        assert_eq!(report.events, 4);
    }

    #[test]
    fn stale_read_is_rejected() {
        let rec = Recorder::new();
        let mut s = rec.session();
        s.put(1, 10, || None);
        s.get(1, || None); // Lost update: the read missed the put.
        drop(s);
        let err = check(&rec.history(), &BTreeMap::new()).unwrap_err();
        let Violation::NotSerializable { depth, events, .. } = err else {
            panic!("expected NotSerializable");
        };
        assert_eq!((depth, events), (1, 2));
    }

    #[test]
    fn concurrent_ops_may_linearize_either_way() {
        // Two overlapping puts to one key; a later read sees one of them.
        // Whichever the read saw, an order exists.
        for winner in [10u64, 20u64] {
            // The puts overlap in time, so either may linearize first; the
            // loser's write is the winner's recorded previous value.
            let h = History {
                sessions: vec![
                    vec![ev(
                        Op::Put(1, 10),
                        Ret::Value((winner == 10).then_some(20)),
                        0,
                        10,
                    )],
                    vec![
                        ev(
                            Op::Put(1, 20),
                            Ret::Value((winner == 20).then_some(10)),
                            1,
                            9,
                        ),
                        ev(Op::Get(1), Ret::Value(Some(winner)), 11, 12),
                    ],
                ],
            };
            check(&h, &BTreeMap::new())
                .unwrap_or_else(|v| panic!("winner {winner} should serialize: {v}"));
        }
    }

    #[test]
    fn real_time_order_is_enforced() {
        // The put RESPONDED before the get was INVOKED, so the get cannot
        // be ordered first even though that would explain its result.
        let h = History {
            sessions: vec![
                vec![ev(Op::Put(1, 10), Ret::Value(None), 0, 1)],
                vec![ev(Op::Get(1), Ret::Value(None), 2, 3)],
            ],
        };
        assert!(matches!(
            check(&h, &BTreeMap::new()),
            Err(Violation::NotSerializable { .. })
        ));
    }

    #[test]
    fn torn_batch_snapshot_is_rejected() {
        // A batch writes keys 1 and 2 atomically; a concurrent range saw
        // only half of it — no serialization explains that.
        let h = History {
            sessions: vec![
                vec![ev(
                    Op::Batch(vec![(1, Some(11)), (2, Some(22))]),
                    Ret::Values(vec![None, None]),
                    0,
                    5,
                )],
                vec![ev(Op::Range(0, 9), Ret::Snapshot(vec![(1, 11)]), 1, 4)],
            ],
        };
        assert!(matches!(
            check(&h, &BTreeMap::new()),
            Err(Violation::NotSerializable { .. })
        ));
        // Seeing all or none of it is fine.
        for snap in [vec![], vec![(1, 11), (2, 22)]] {
            let h = History {
                sessions: vec![
                    vec![ev(
                        Op::Batch(vec![(1, Some(11)), (2, Some(22))]),
                        Ret::Values(vec![None, None]),
                        0,
                        5,
                    )],
                    vec![ev(Op::Range(0, 9), Ret::Snapshot(snap), 1, 4)],
                ],
            };
            check(&h, &BTreeMap::new()).expect("atomic view serializes");
        }
    }

    #[test]
    fn rmw_and_field_range_replay() {
        let age = Field::new(0, 28);
        let rec = Recorder::new();
        let mut s = rec.session();
        s.put(7, age.set(0, 30), || None);
        assert_eq!(
            s.rmw(7, age, 31, || Some(age.set(0, 31))),
            Some(age.set(0, 31))
        );
        s.field_range(age, 0, 100, || vec![(7, age.set(0, 31))]);
        s.rmw(99, age, 1, || None); // Absent key: no-op, returns None.
        drop(s);
        check(&rec.history(), &BTreeMap::new()).expect("rmw history valid");

        // A field scan ordered by (field, key), with a wrong order, fails.
        let h = History {
            sessions: vec![vec![
                ev(Op::Put(1, 5), Ret::Value(None), 0, 1),
                ev(Op::Put(2, 4), Ret::Value(None), 2, 3),
                ev(
                    Op::FieldRange {
                        field: age,
                        lo: 0,
                        hi: 10,
                    },
                    // Correct order is (2,4) then (1,5) — by field value.
                    Ret::Snapshot(vec![(1, 5), (2, 4)]),
                    4,
                    5,
                ),
            ]],
        };
        assert!(check(&h, &BTreeMap::new()).is_err());
    }

    #[test]
    fn batch_mismatch_rolls_back_cleanly() {
        // First batch succeeds; second batch's recorded prevs are wrong on
        // the SECOND component, forcing a mid-batch rollback (exercising
        // the partial-undo path) before the search concludes.
        let h = History {
            sessions: vec![
                vec![ev(
                    Op::Batch(vec![(1, Some(1)), (2, None)]),
                    Ret::Values(vec![None, None]),
                    0,
                    1,
                )],
                vec![ev(
                    Op::Batch(vec![(3, Some(3)), (1, Some(9))]),
                    Ret::Values(vec![None, None]), // Wrong: prev of 1 is Some(1).
                    2,
                    3,
                )],
            ],
        };
        assert!(check(&h, &BTreeMap::new()).is_err());
    }

    #[test]
    fn budget_exhaustion_reports() {
        let h = History {
            sessions: vec![
                vec![ev(Op::Put(1, 1), Ret::Value(None), 0, 10)],
                vec![ev(Op::Put(2, 2), Ret::Value(None), 1, 9)],
            ],
        };
        assert!(matches!(
            check_bounded(&h, &BTreeMap::new(), 0),
            Err(Violation::BudgetExhausted { .. })
        ));
        assert!(format!("{}", Violation::BudgetExhausted { states: 1 }).contains("budget"));
    }

    #[test]
    fn initial_state_is_respected() {
        let mut init = BTreeMap::new();
        init.insert(5, 50);
        let rec = Recorder::new();
        let mut s = rec.session();
        s.get(5, || Some(50));
        s.delete(5, || Some(50));
        drop(s);
        check(&rec.history(), &init).expect("initial state visible");
    }

    #[test]
    fn many_threads_of_commuting_ops_stay_cheap() {
        // 4 sessions × 64 ops on disjoint keys, fully overlapped in time:
        // memoization must keep the state count near-linear, not 4^64.
        let sessions: Vec<Vec<Event>> = (0..4u64)
            .map(|t| {
                (0..64u64)
                    .map(|i| {
                        ev(
                            Op::Put(t * 1000 + i, i),
                            Ret::Value(None),
                            t + i * 8,
                            t + i * 8 + 4,
                        )
                    })
                    .collect()
            })
            .collect();
        let h = History { sessions };
        let report = check(&h, &BTreeMap::new()).expect("commuting ops serialize");
        assert!(
            report.states < 100_000,
            "memoization failed: {} states",
            report.states
        );
    }

    #[test]
    fn snapshot_scan_records_and_serializes_atomically() {
        let map = Mutex::new(BTreeMap::from([(1u64, 10u64), (2, 20)]));
        let rec = Recorder::new();
        let mut s = rec.session();
        let ts = s.snapshot_scan(0, 9, || {
            (
                7,
                map.lock().unwrap().iter().map(|(&k, &v)| (k, v)).collect(),
            )
        });
        assert_eq!(ts, 7);
        s.put(3, 30, || map.lock().unwrap().insert(3, 30));
        s.snapshot_scan(0, 9, || {
            (
                9,
                map.lock().unwrap().iter().map(|(&k, &v)| (k, v)).collect(),
            )
        });
        drop(s);
        let init = BTreeMap::from([(1, 10), (2, 20)]);
        let report = check_snapshot_isolation(&rec.history(), &init).expect("valid SI history");
        assert_eq!(report.events, 3);
    }

    #[test]
    fn torn_snapshot_scan_is_rejected() {
        // A batch replaces keys 1 and 2 atomically; the scan's merged
        // pages mixed the old value of 2 with the new value of 1 — the
        // exact tear pinned-timestamp scans exist to rule out.
        let h = History {
            sessions: vec![
                vec![ev(
                    Op::Batch(vec![(1, Some(11)), (2, Some(22))]),
                    Ret::Values(vec![Some(10), Some(20)]),
                    0,
                    5,
                )],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 3,
                    },
                    Ret::Snapshot(vec![(1, 11), (2, 20)]),
                    1,
                    4,
                )],
            ],
        };
        let init = BTreeMap::from([(1, 10), (2, 20)]);
        assert!(matches!(
            check_snapshot_isolation(&h, &init),
            Err(Violation::NotSerializable { .. })
        ));
    }

    #[test]
    fn snapshot_scan_may_read_slightly_in_the_past() {
        // The put RESPONDED before the scan was invoked, yet the scan
        // missed it. As a plain Range that is a stale read; a pinned
        // snapshot is allowed to trail (its pin excludes commits above a
        // still-wiring transaction).
        let put = ev(Op::Put(1, 10), Ret::Value(None), 0, 1);
        let h = History {
            sessions: vec![
                vec![put.clone()],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 0,
                    },
                    Ret::Snapshot(Vec::new()),
                    2,
                    3,
                )],
            ],
        };
        check_snapshot_isolation(&h, &BTreeMap::new()).expect("SI permits the trailing pin");
        let h = History {
            sessions: vec![
                vec![put],
                vec![ev(Op::Range(0, 9), Ret::Snapshot(Vec::new()), 2, 3)],
            ],
        };
        assert!(matches!(
            check(&h, &BTreeMap::new()),
            Err(Violation::NotSerializable { .. })
        ));
    }

    #[test]
    fn snapshot_timestamp_regression_is_rejected() {
        // Both scans read the empty map consistently (plain check would
        // pass), but the second scan — strictly later in real time —
        // pinned a SMALLER timestamp: the snapshot clock ran backwards.
        let h = History {
            sessions: vec![vec![
                ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 7,
                    },
                    Ret::Snapshot(Vec::new()),
                    0,
                    1,
                ),
                ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 3,
                    },
                    Ret::Snapshot(Vec::new()),
                    2,
                    3,
                ),
            ]],
        };
        let err = check_snapshot_isolation(&h, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, Violation::SnapshotRegression { .. }), "{err}");
        assert!(err.to_string().contains("ran backwards"), "{err}");
    }

    #[test]
    fn equal_timestamp_snapshot_divergence_is_rejected() {
        // Two scans pinned the SAME timestamp; each result alone is
        // explainable (a put overlaps both), but one instant cannot hold
        // both states — they must agree on the ranges' intersection.
        let h = History {
            sessions: vec![
                vec![ev(Op::Put(1, 2), Ret::Value(Some(1)), 0, 20)],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 5,
                    },
                    Ret::Snapshot(vec![(1, 1)]),
                    1,
                    4,
                )],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 1,
                        hi: 15,
                        ts: 5,
                    },
                    Ret::Snapshot(vec![(1, 2)]),
                    2,
                    6,
                )],
            ],
        };
        let init = BTreeMap::from([(1, 1)]);
        let err = check_snapshot_isolation(&h, &init).unwrap_err();
        assert!(matches!(err, Violation::SnapshotDivergence { .. }), "{err}");
        // Disjoint ranges at one timestamp never conflict.
        let h = History {
            sessions: vec![
                vec![ev(Op::Put(1, 2), Ret::Value(Some(1)), 0, 20)],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 0,
                        hi: 9,
                        ts: 5,
                    },
                    Ret::Snapshot(vec![(1, 1)]),
                    1,
                    4,
                )],
                vec![ev(
                    Op::SnapshotScan {
                        lo: 10,
                        hi: 15,
                        ts: 5,
                    },
                    Ret::Snapshot(Vec::new()),
                    2,
                    6,
                )],
            ],
        };
        check_snapshot_isolation(&h, &init).expect("disjoint ranges cannot diverge");
    }
}
