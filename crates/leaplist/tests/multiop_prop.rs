//! Property test for the multi-op chain rebuild at the Leap-List level:
//! [`LeapListLt::apply_batch_grouped`] with an arbitrary op group —
//! duplicate keys, interleaved puts and removes, keys spanning many nodes
//! — must be equivalent to applying the same ops sequentially, and must
//! preserve the structure's node-capacity invariant.

use leaplist::{BatchOp, LeapListLt, Params};
use proptest::prelude::*;

fn small() -> Params {
    Params {
        node_size: 4,
        max_level: 6,
        use_trie: true,
        ..Params::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grouped_apply_equals_sequential_ops(
        prefill in prop::collection::vec(0u64..96, 0..24),
        ops in prop::collection::vec((0u64..96, 0u64..1_000, any::<bool>()), 1..32),
    ) {
        let grouped: LeapListLt<u64> = LeapListLt::new(small());
        let sequential: LeapListLt<u64> = LeapListLt::new(small());
        for &k in &prefill {
            grouped.update(k, k + 10_000);
            sequential.update(k, k + 10_000);
        }
        let batch: Vec<BatchOp<u64>> = ops
            .iter()
            .map(|&(k, v, put)| {
                if put {
                    BatchOp::Update(k, v)
                } else {
                    BatchOp::Remove(k)
                }
            })
            .collect();
        let got = LeapListLt::apply_batch_grouped(&[&grouped], &[&batch])
            .pop()
            .expect("one list");
        let want: Vec<Option<u64>> = batch
            .iter()
            .map(|op| match op {
                BatchOp::Update(k, v) => sequential.update(*k, *v),
                BatchOp::Remove(k) => sequential.remove(*k),
            })
            .collect();
        prop_assert_eq!(&got, &want, "previous values diverged");
        prop_assert_eq!(
            grouped.range_query(0, 2_000),
            sequential.range_query(0, 2_000),
            "final contents diverged"
        );
        for size in grouped.node_sizes() {
            prop_assert!(size <= 4, "chain rebuild exceeded K");
        }
    }
}
