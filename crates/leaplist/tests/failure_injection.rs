//! Failure injection: force the pathological paths — constant false
//! conflicts from a tiny ownership-record table, write-through domains,
//! single-key pile-ups and key-space churn at node boundaries — and check
//! that every operation still completes correctly.

use leap_stm::{Mode, StmDomain};
use leaplist::{LeapListCop, LeapListLt, Params};
use std::collections::BTreeMap;
use std::sync::Arc;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn tiny_params() -> Params {
    Params {
        node_size: 3,
        max_level: 6,
        use_trie: true,
        ..Params::default()
    }
}

/// A 2-orec table maps almost every TVar to the same lock word: nearly
/// every transaction conflicts falsely with every other. Operations must
/// still linearize (progress comes from retry + backoff).
#[test]
fn lt_survives_pathological_orec_collisions() {
    let domain = Arc::new(StmDomain::with_config(Mode::WriteBack, 1));
    let map = Arc::new(LeapListLt::<u64>::with_domain(
        tiny_params(),
        domain.clone(),
    ));
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0xFA15E + t;
                for i in 0..800u64 {
                    let k = xorshift(&mut rng) % 64;
                    if i % 3 == 0 {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Conflicts must have happened (sanity that the injection bites) — but
    // only when the host can actually run the writers in parallel. On a
    // single hardware thread, transactions conflict only if the scheduler
    // preempts one mid-flight, so zero aborts is a legitimate outcome.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert!(
        cores == 1 || domain.stats().total_aborts() > 0,
        "a 2-orec table should cause aborts on a {cores}-core host"
    );
    // ...and the structure must still be coherent.
    let snap = map.range_query(0, 100);
    for w in snap.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    assert_eq!(snap.len(), map.len());
}

#[test]
fn cop_survives_pathological_orec_collisions() {
    let domain = Arc::new(StmDomain::with_config(Mode::WriteBack, 1));
    let map = Arc::new(LeapListCop::<u64>::with_domain(
        tiny_params(),
        domain.clone(),
    ));
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0xC0F + t;
                for i in 0..600u64 {
                    let k = xorshift(&mut rng) % 64;
                    if i % 3 == 0 {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = map.range_query(0, 100);
    for w in snap.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

/// Sequential model equivalence on a write-through domain (the GCC-TM
/// configuration): single-threaded, every op must behave exactly like the
/// write-back build.
#[test]
fn lt_write_through_matches_model_sequentially() {
    let domain = Arc::new(StmDomain::with_config(Mode::WriteThrough, 12));
    let map = LeapListLt::<u64>::with_domain(tiny_params(), domain);
    let mut model = BTreeMap::new();
    let mut rng = 0x77u64;
    for i in 0..4_000u64 {
        let k = xorshift(&mut rng) % 128;
        match xorshift(&mut rng) % 4 {
            0 => assert_eq!(map.remove(k), model.remove(&k), "remove {k} at step {i}"),
            1 => assert_eq!(
                map.lookup(k),
                model.get(&k).copied(),
                "lookup {k} at step {i}"
            ),
            _ => assert_eq!(
                map.update(k, i),
                model.insert(k, i),
                "update {k} at step {i}"
            ),
        }
        if i % 256 == 0 {
            let lo = xorshift(&mut rng) % 128;
            let hi = lo + xorshift(&mut rng) % 64;
            let got = map.range_query(lo, hi);
            let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(a, b)| (*a, *b)).collect();
            assert_eq!(got, want, "range [{lo}, {hi}] at step {i}");
        }
    }
}

/// Everyone hammers ONE key: maximum possible validation/mark contention
/// on a single node window.
#[test]
fn single_key_pileup() {
    let map = Arc::new(LeapListLt::<u64>::new(tiny_params()));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    if (i + t) % 5 == 0 {
                        map.remove(42);
                    } else {
                        map.update(42, t * 10_000 + i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Key 42 is either present with some writer's value or absent; the
    // structure is intact either way.
    if let Some(v) = map.lookup(42) {
        assert!(v < 4 * 10_000);
        assert_eq!(map.range_query(42, 42), vec![(42, v)]);
    } else {
        assert_eq!(map.range_query(42, 42), vec![]);
    }
    map.update(1, 1);
    map.update(100, 100);
    assert_eq!(map.range_query(0, 41).len(), 1);
}

/// Node-boundary churn: with node_size=2 every second update splits and
/// every second remove merges; batches across 4 lists multiply the window
/// validations.
#[test]
fn split_merge_storm_with_batches() {
    let lists = Arc::new(LeapListLt::<u64>::group(
        4,
        Params {
            node_size: 2,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        },
    ));
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let lists = lists.clone();
            std::thread::spawn(move || {
                let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
                let mut rng = 0x5711 + t;
                for i in 0..600u64 {
                    let keys: Vec<u64> = (0..4).map(|_| xorshift(&mut rng) % 96).collect();
                    if i % 3 == 0 {
                        LeapListLt::remove_batch(&refs, &keys);
                    } else {
                        let vals = vec![i; 4];
                        LeapListLt::update_batch(&refs, &keys, &vals);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for l in lists.iter() {
        let snap = l.range_query(0, 200);
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0, "structure corrupted by split/merge storm");
        }
        assert_eq!(snap.len(), l.len());
    }
}

/// The paper's alternative traversal (§2.1): every pointer hop a
/// single-location read transaction. Must behave identically to the
/// mark-check traversal, sequentially and under churn.
#[test]
fn single_location_read_traversal_matches_model() {
    use leaplist::Traversal;
    let map = LeapListLt::<u64>::new(Params {
        node_size: 3,
        max_level: 6,
        use_trie: true,
        traversal: Traversal::SingleLocationRead,
    });
    let mut model = BTreeMap::new();
    let mut rng = 0x511u64;
    for i in 0..3_000u64 {
        let k = xorshift(&mut rng) % 128;
        match xorshift(&mut rng) % 4 {
            0 => assert_eq!(map.remove(k), model.remove(&k)),
            1 => assert_eq!(map.lookup(k), model.get(&k).copied()),
            _ => assert_eq!(map.update(k, i), model.insert(k, i)),
        }
    }
    let got = map.range_query(0, 200);
    let want: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
    assert_eq!(got, want);
}

#[test]
fn single_location_read_traversal_under_churn() {
    use leaplist::Traversal;
    let map = Arc::new(LeapListLt::<u64>::new(Params {
        node_size: 4,
        max_level: 6,
        use_trie: true,
        traversal: Traversal::SingleLocationRead,
    }));
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0x51F + t;
                for i in 0..1_500u64 {
                    let k = xorshift(&mut rng) % 100;
                    if i % 4 == 0 {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = map.range_query(0, 200);
    for w in snap.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    assert_eq!(snap.len(), map.len());
}

/// Mixed apply_batch under contention: a "move" workload (remove from one
/// list, insert into another) that must never lose or duplicate the token.
#[test]
fn apply_batch_token_passing() {
    use leaplist::BatchOp;
    let lists = Arc::new(LeapListLt::<u64>::group(2, tiny_params()));
    lists[0].update(7, 1); // one token, starts in list 0
    let handles: Vec<_> = (0..2usize)
        .map(|dir| {
            let lists = lists.clone();
            std::thread::spawn(move || {
                let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
                let mut moved = 0;
                for _ in 0..2_000 {
                    // Thread 0 moves 0 -> 1, thread 1 moves 1 -> 0. Exactly
                    // one of the two component ops finds the token; the
                    // batch is atomic either way.
                    let ops = if dir == 0 {
                        [BatchOp::Remove(7), BatchOp::Update(7, 1)]
                    } else {
                        [BatchOp::Update(7, 1), BatchOp::Remove(7)]
                    };
                    // Only move if the source currently holds the token;
                    // otherwise this batch would mint a duplicate.
                    let src = if dir == 0 { 0 } else { 1 };
                    if lists[src].lookup(7).is_some() {
                        LeapListLt::apply_batch(&refs, &ops);
                        moved += 1;
                    }
                }
                moved
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Exactly one token remains in the union (the lookup+batch pair is not
    // atomic, so a stale lookup can re-insert while the other list still
    // holds it — both lists holding it is possible transiently, but after
    // quiescence each list holds at most one entry for key 7 and at least
    // one list holds it).
    let in0 = lists[0].lookup(7).is_some();
    let in1 = lists[1].lookup(7).is_some();
    assert!(in0 || in1, "token lost");
    assert!(lists[0].len() <= 1 && lists[1].len() <= 1);
}
