//! Concurrent correctness tests for the Leap-List variants, focused on the
//! paper's headline guarantee: **linearizable range queries** under
//! concurrent structural churn (splits, merges, node replacement).

use leaplist::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm, Params, RangeMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn small_params() -> Params {
    // Tiny nodes maximize split/merge churn.
    Params {
        node_size: 4,
        max_level: 8,
        use_trie: true,
        ..Params::default()
    }
}

/// Writers keep the invariant "key k and key k+1000 always carry the same
/// value" by updating the pair through two separate keys *within one node
/// replacement each*... they cannot — so instead each writer updates a
/// single key to strictly increasing values, and range queries assert
/// per-key monotonicity plus snapshot sortedness. A stronger pair test for
/// the batched (multi-list) API lives below.
fn churn_and_snapshot_check(map: Arc<dyn RangeMap<u64>>, threads: usize, iters: u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..threads)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0xABCDu64 + t as u64 * 77;
                for i in 0..iters {
                    let k = xorshift(&mut rng) % 256;
                    if xorshift(&mut rng).is_multiple_of(4) {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    let checker = {
        let map = map.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let lo = 32;
                let hi = 224;
                let snap = map.range_query(lo, hi);
                // Snapshot must be sorted, unique, in range.
                for w in snap.windows(2) {
                    assert!(w[0].0 < w[1].0, "unsorted snapshot: {:?}", w);
                }
                for (k, _) in &snap {
                    assert!((lo..=hi).contains(k), "key {k} outside [{lo}, {hi}]");
                }
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    checker.join().unwrap();
}

#[test]
fn lt_snapshots_stay_consistent_under_churn() {
    churn_and_snapshot_check(Arc::new(LeapListLt::<u64>::new(small_params())), 3, 4_000);
}

#[test]
fn cop_snapshots_stay_consistent_under_churn() {
    churn_and_snapshot_check(Arc::new(LeapListCop::<u64>::new(small_params())), 3, 2_500);
}

#[test]
fn tm_snapshots_stay_consistent_under_churn() {
    churn_and_snapshot_check(Arc::new(LeapListTm::<u64>::new(small_params())), 3, 1_500);
}

#[test]
fn rwlock_snapshots_stay_consistent_under_churn() {
    churn_and_snapshot_check(
        Arc::new(LeapListRwlock::<u64>::new(small_params())),
        3,
        2_500,
    );
}

/// The linearizability litmus from the paper's motivation: a writer moves a
/// *pair* of keys to a new generation in ONE update each... a single-key
/// update is atomic, so instead we exploit fat nodes: two keys that always
/// land in the same node (key space smaller than K) are updated by
/// replacing the node twice; a range query could see generations (g, g-1)
/// but NEVER (g-1, g) — writer order — and never a missing key.
#[test]
fn lt_range_query_never_inverts_writer_order() {
    let map = Arc::new(LeapListLt::<u64>::new(Params {
        node_size: 64,
        max_level: 4,
        use_trie: true,
        ..Params::default()
    }));
    map.update(10, 0);
    map.update(20, 0);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let map = map.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for g in 1..30_000u64 {
                map.update(10, g);
                map.update(20, g);
            }
            stop.store(true, Ordering::Release);
        })
    };
    let mut last = (0, 0);
    while !stop.load(Ordering::Acquire) {
        let snap = map.range_query(0, 100);
        assert_eq!(snap.len(), 2, "a key vanished from the snapshot: {snap:?}");
        let (v10, v20) = (snap[0].1, snap[1].1);
        assert!(v10 >= v20, "snapshot inverted writer order: {v10} < {v20}");
        assert!(
            v10 - v20 <= 1,
            "snapshot skipped a generation: {v10} vs {v20}"
        );
        assert!(v10 >= last.0 && v20 >= last.1, "non-monotonic snapshots");
        last = (v10, v20);
    }
    writer.join().unwrap();
}

/// Batched updates across lists are one linearizable action: concurrent
/// lookups of the same key in both lists may lag but may never observe
/// list-1 AHEAD of list-0's committed prefix by more than the in-flight
/// batch, and after quiescence both lists agree exactly.
#[test]
fn lt_batch_updates_are_atomic_across_lists() {
    let lists = Arc::new(LeapListLt::<u64>::group(2, small_params()));
    let writer = {
        let lists = lists.clone();
        std::thread::spawn(move || {
            let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
            for g in 1..=5_000u64 {
                LeapListLt::update_batch(&refs, &[7, 7], &[g, g]);
            }
        })
    };
    // Concurrent single-list range queries: each list individually always
    // shows a committed generation.
    for _ in 0..2_000 {
        let a = lists[0].lookup(7).unwrap_or(0);
        let b = lists[1].lookup(7).unwrap_or(0);
        // Both lists move through the same committed sequence 0,1,2,...;
        // two reads are not atomic together, but each must be a valid
        // generation (<= 5000) and list reads must be monotone per list.
        assert!(a <= 5_000 && b <= 5_000);
    }
    writer.join().unwrap();
    assert_eq!(lists[0].lookup(7), Some(5_000));
    assert_eq!(lists[1].lookup(7), Some(5_000));
}

/// Remove/update storms on overlapping ranges: final state must equal the
/// accounting (every key's last writer wins; here each thread owns a key
/// stripe so the final state is deterministic).
fn striped_final_state(map: Arc<dyn RangeMap<u64>>, threads: u64) {
    let iters = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                for i in 0..iters {
                    let k = t + (i % 64) * threads; // disjoint stripes
                    if i % 5 == 4 {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Per stripe, the last op for slot j (j = i % 64) is i = iters-64+j ...
    // simpler: recompute expected sequentially.
    let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
    for t in 0..threads {
        for i in 0..iters {
            let k = t + (i % 64) * threads;
            if i % 5 == 4 {
                expected.remove(&k);
            } else {
                expected.insert(k, i);
            }
        }
    }
    let got = map.range_query(0, 64 * threads + threads);
    let want: Vec<(u64, u64)> = expected.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn lt_striped_writers_deterministic_final_state() {
    striped_final_state(Arc::new(LeapListLt::<u64>::new(small_params())), 4);
}

#[test]
fn cop_striped_writers_deterministic_final_state() {
    striped_final_state(Arc::new(LeapListCop::<u64>::new(small_params())), 4);
}

#[test]
fn tm_striped_writers_deterministic_final_state() {
    striped_final_state(Arc::new(LeapListTm::<u64>::new(small_params())), 3);
}

#[test]
fn rwlock_striped_writers_deterministic_final_state() {
    striped_final_state(Arc::new(LeapListRwlock::<u64>::new(small_params())), 4);
}

/// Leak check: with a drop-counting value type, every value clone created
/// by node replacement must eventually be dropped — no node may leak or be
/// double-freed (canary asserts in Drop would abort).
#[test]
fn lt_no_leaks_under_churn() {
    use std::sync::atomic::AtomicI64;
    static LIVE: AtomicI64 = AtomicI64::new(0);

    #[derive(Debug)]
    struct CountedCell(u64);
    impl Clone for CountedCell {
        fn clone(&self) -> Self {
            LIVE.fetch_add(1, Ordering::SeqCst);
            CountedCell(self.0)
        }
    }
    impl Drop for CountedCell {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let map = Arc::new(LeapListLt::<CountedCell>::new(small_params()));

    let base = LIVE.load(Ordering::SeqCst);
    {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let map = map.clone();
                std::thread::spawn(move || {
                    let mut rng = 0xFEEDu64 * (t + 1);
                    for i in 0..2_000u64 {
                        let k = xorshift(&mut rng) % 128;
                        if i % 3 == 0 {
                            map.remove(k);
                        } else {
                            LIVE.fetch_add(1, Ordering::SeqCst);
                            map.update(k, CountedCell(i));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    // Drain deferred reclamation, then drop the map itself.
    let collector = leap_ebr::default_collector().register();
    collector.advance_until_quiescent();
    let live_in_map = map.len() as i64;
    drop(map);
    collector.advance_until_quiescent();
    let end = LIVE.load(Ordering::SeqCst);
    assert_eq!(
        end - base,
        0,
        "leaked {} values ({} were live in the map before drop)",
        end - base,
        live_in_map
    );
}

/// Snapshot pages are immune to concurrent batch churn: writers keep the
/// cross-list invariant "both lists carry identical contents" through
/// atomic `update_batch`/`remove_batch` pairs, so any pinned snapshot —
/// spanning both lists of the shared domain — must read the two lists as
/// exact mirrors, and re-reading the same snapshot must reproduce the
/// same page bit-for-bit while the live lists keep moving.
#[test]
fn lt_snapshot_pages_mirror_across_lists_under_batch_churn() {
    let lists = Arc::new(LeapListLt::<u64>::group(2, small_params()));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let lists = lists.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
            let mut g = 0u64;
            while !stop.load(Ordering::Relaxed) {
                g += 1;
                let k = g % 64;
                if g.is_multiple_of(3) {
                    LeapListLt::remove_batch(&refs, &[k, k]);
                } else {
                    LeapListLt::update_batch(&refs, &[k, k], &[g, g]);
                }
            }
        })
    };
    for _ in 0..400 {
        let snap = lists[0].pin_snapshot();
        let a = lists[0].snapshot_page(&snap, 0, 1_000, usize::MAX);
        let b = lists[1].snapshot_page(&snap, 0, 1_000, usize::MAX);
        assert_eq!(a, b, "batch-maintained mirrors diverged at one ts");
        let again = lists[0].snapshot_page(&snap, 0, 1_000, usize::MAX);
        assert_eq!(a, again, "same snapshot, same page — always");
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}
