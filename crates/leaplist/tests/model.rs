//! Model-based property tests: all four Leap-List variants must agree with
//! `BTreeMap` over arbitrary operation sequences, across node sizes that
//! force frequent splits and merges.

use leaplist::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm, Params, RangeMap};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0..96u64;
    prop_oneof![
        3 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => key.clone().prop_map(Op::Remove),
        1 => key.clone().prop_map(Op::Lookup),
        1 => (key.clone(), 0..48u64).prop_map(|(a, w)| Op::Range(a, a + w)),
    ]
}

fn run_against_model(map: &dyn RangeMap<u64>, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Update(k, v) => {
                prop_assert_eq!(map.update(k, v), model.insert(k, v), "update {}", k);
            }
            Op::Remove(k) => {
                prop_assert_eq!(map.remove(k), model.remove(&k), "remove {}", k);
            }
            Op::Lookup(k) => {
                prop_assert_eq!(map.lookup(k), model.get(&k).copied(), "lookup {}", k);
            }
            Op::Range(lo, hi) => {
                let got = map.range_query(lo, hi);
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want, "range [{}, {}]", lo, hi);
            }
        }
    }
    prop_assert_eq!(map.len(), model.len());
    Ok(())
}

fn params(node_size: usize) -> Params {
    Params {
        node_size,
        max_level: 6,
        use_trie: true,
        ..Params::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lt_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120),
                           k in 2usize..8) {
        run_against_model(&LeapListLt::<u64>::new(params(k)), &ops)?;
    }

    #[test]
    fn cop_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120),
                            k in 2usize..8) {
        run_against_model(&LeapListCop::<u64>::new(params(k)), &ops)?;
    }

    #[test]
    fn tm_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120),
                           k in 2usize..8) {
        run_against_model(&LeapListTm::<u64>::new(params(k)), &ops)?;
    }

    #[test]
    fn rwlock_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120),
                               k in 2usize..8) {
        run_against_model(&LeapListRwlock::<u64>::new(params(k)), &ops)?;
    }

    #[test]
    fn lt_without_trie_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..120)) {
        // Ablation path: binary-search intra-node lookup.
        let p = Params { node_size: 4, max_level: 6, use_trie: false, ..Params::default() };
        run_against_model(&LeapListLt::<u64>::new(p), &ops)?;
    }

    #[test]
    fn lt_paper_node_size_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..200)) {
        // K = 300 >> key space: everything lives in one or two nodes.
        run_against_model(&LeapListLt::<u64>::new(Params::default()), &ops)?;
    }

    #[test]
    fn lt_batched_ops_match_model(
        batches in prop::collection::vec(
            prop::collection::vec((0..64u64, any::<u64>()), 3..=3), 1..40)
    ) {
        // Three lists updated atomically per batch; each list j must end up
        // exactly like a model map receiving the j-th component.
        let lists = LeapListLt::<u64>::group(3, params(4));
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let mut models: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); 3];
        for batch in &batches {
            let keys: Vec<u64> = batch.iter().map(|(k, _)| *k).collect();
            let vals: Vec<u64> = batch.iter().map(|(_, v)| *v).collect();
            let old = LeapListLt::update_batch(&refs, &keys, &vals);
            for j in 0..3 {
                prop_assert_eq!(old[j], models[j].insert(keys[j], vals[j]));
            }
        }
        for j in 0..3 {
            let got = lists[j].range_query(0, 1000);
            let want: Vec<(u64, u64)> = models[j].iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        }
    }
}
