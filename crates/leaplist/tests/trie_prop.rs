//! Property tests for the intra-node crit-bit trie (the String-B-tree
//! index embedded in every Leap-List node).

use leaplist::{binary_search_index, Trie};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every built key is found at its own index.
    #[test]
    fn finds_every_member(keys in prop::collection::btree_set(any::<u64>(), 0..200)) {
        let keys: Vec<u64> = keys.iter().copied().collect();
        let trie = Trie::build(&keys);
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(trie.get(&keys, *k), Some(i));
        }
    }

    /// Agrees with binary search on arbitrary probes (hits and misses).
    #[test]
    fn agrees_with_binary_search(
        keys in prop::collection::btree_set(any::<u64>(), 0..150),
        probes in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let keys: Vec<u64> = keys.iter().copied().collect();
        let trie = Trie::build(&keys);
        for p in probes {
            prop_assert_eq!(trie.get(&keys, p), binary_search_index(&keys, p), "probe {}", p);
        }
        // Probe near the members too (off-by-one misses).
        for k in &keys {
            for p in [k.wrapping_sub(1), k.wrapping_add(1)] {
                prop_assert_eq!(trie.get(&keys, p), binary_search_index(&keys, p));
            }
        }
    }

    /// A crit-bit trie over n keys has exactly n-1 internal nodes — the
    /// paper's "minimal number of levels".
    #[test]
    fn internal_node_count_is_minimal(keys in prop::collection::btree_set(any::<u64>(), 1..200)) {
        let keys: Vec<u64> = keys.iter().copied().collect();
        let trie = Trie::build(&keys);
        prop_assert_eq!(trie.internal_nodes(), keys.len() - 1);
    }

    /// Adversarial bit patterns: keys differing only in high bits, only in
    /// low bits, and dense runs.
    #[test]
    fn structured_key_families(shift in 0u32..58, n in 1usize..64) {
        // n < 64 = 6 bits, shift <= 57: i << shift never overflows.
        let keys: Vec<u64> = (0..n as u64).map(|i| i << shift).collect();
        let trie = Trie::build(&keys);
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(trie.get(&keys, *k), Some(i));
        }
        // Everything strictly between two members misses.
        if shift > 0 && n > 1 {
            prop_assert_eq!(trie.get(&keys, (1u64 << shift) - 1), None);
        }
    }
}
