//! The immutable intra-node bitwise trie.
//!
//! Each Leap-List node embeds "an immutable bitwise trie … to facilitate
//! fast lookups when K is large", a technique borrowed from the String
//! B-tree of Ferragina and Grossi (paper §1.2, §2.1). We implement it as a
//! crit-bit (PATRICIA) trie over the node's keys: internal nodes test a
//! single bit position and the leaves hold indexes into the node's sorted
//! key-value array, using "the minimal number of levels to represent all
//! the keys" — one internal node per distinguishing bit, `count - 1` in
//! total.

/// Child encoding: high bit set = leaf (payload = array index), otherwise
/// an index into `nodes`.
const LEAF_BIT: u32 = 1 << 31;

#[derive(Clone, Copy, Debug)]
struct TrieNode {
    /// Bit position tested at this node (0 = least significant).
    bit: u8,
    left: u32,
    right: u32,
}

/// An immutable crit-bit trie mapping each key of a Leap-List node to its
/// index in the node's sorted keys-values array.
///
/// Built once when a node is created and never mutated, mirroring the
/// immutability of the node contents it indexes.
///
/// # Example
///
/// ```
/// use leaplist::Trie;
/// let keys = [3u64, 9, 17, 250];
/// let trie = Trie::build(&keys);
/// assert_eq!(trie.get(&keys, 17), Some(2));
/// assert_eq!(trie.get(&keys, 4), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trie {
    nodes: Box<[TrieNode]>,
    root: u32,
}

impl Trie {
    /// Builds a trie over `keys`, which must be sorted and duplicate-free.
    ///
    /// # Panics
    ///
    /// Debug-asserts sortedness.
    pub fn build(keys: &[u64]) -> Trie {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys not sorted");
        if keys.is_empty() {
            return Trie {
                nodes: Box::new([]),
                root: LEAF_BIT, // unused: get() short-circuits on empty
            };
        }
        let mut nodes = Vec::with_capacity(keys.len().saturating_sub(1));
        let root = Self::build_range(keys, 0, keys.len(), &mut nodes);
        Trie {
            nodes: nodes.into_boxed_slice(),
            root,
        }
    }

    /// Recursively builds the subtree for `keys[lo..hi]`, returning its
    /// child encoding.
    fn build_range(keys: &[u64], lo: usize, hi: usize, nodes: &mut Vec<TrieNode>) -> u32 {
        if hi - lo == 1 {
            return lo as u32 | LEAF_BIT;
        }
        // Highest bit in which the extremes differ: because the slice is
        // sorted, that is the critical bit of the whole range.
        let diff = keys[lo] ^ keys[hi - 1];
        let bit = 63 - diff.leading_zeros() as u8;
        // First index whose key has the critical bit set (keys are sorted,
        // so it is a partition point).
        let split = keys[lo..hi].partition_point(|k| k & (1u64 << bit) == 0) + lo;
        debug_assert!(split > lo && split < hi);
        let idx = nodes.len();
        nodes.push(TrieNode {
            bit,
            left: 0,
            right: 0,
        });
        let left = Self::build_range(keys, lo, split, nodes);
        let right = Self::build_range(keys, split, hi, nodes);
        nodes[idx].left = left;
        nodes[idx].right = right;
        idx as u32
    }

    /// Returns the index of `key` in `keys` (the array the trie was built
    /// over), or `None` if absent. `O(1)` trie hops per distinguishing bit,
    /// plus one final key comparison.
    pub fn get(&self, keys: &[u64], key: u64) -> Option<usize> {
        if keys.is_empty() {
            return None;
        }
        let idx = self.descend(key)?;
        (keys[idx] == key).then_some(idx)
    }

    /// Walks the trie for `key` and returns the candidate index. The caller
    /// must verify that the key at the returned index actually matches
    /// (crit-bit tries identify one candidate, not membership).
    pub(crate) fn descend(&self, key: u64) -> Option<usize> {
        let mut cursor = self.root;
        while cursor & LEAF_BIT == 0 {
            let n = self.nodes[cursor as usize];
            cursor = if key & (1u64 << n.bit) == 0 {
                n.left
            } else {
                n.right
            };
        }
        Some((cursor & !LEAF_BIT) as usize)
    }

    /// Number of internal nodes (diagnostics; equals `count - 1`).
    pub fn internal_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Plain binary search used as the ablation baseline for the trie
/// (DESIGN.md §5.3).
pub fn binary_search_index(keys: &[u64], key: u64) -> Option<usize> {
    keys.binary_search(&key).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trie() {
        let t = Trie::build(&[]);
        assert_eq!(t.get(&[], 5), None);
        assert_eq!(t.internal_nodes(), 0);
    }

    #[test]
    fn singleton() {
        let keys = [42u64];
        let t = Trie::build(&keys);
        assert_eq!(t.get(&keys, 42), Some(0));
        assert_eq!(t.get(&keys, 41), None);
        assert_eq!(t.internal_nodes(), 0);
    }

    #[test]
    fn dense_range() {
        let keys: Vec<u64> = (100..400).collect();
        let t = Trie::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(&keys, k), Some(i));
        }
        assert_eq!(t.get(&keys, 99), None);
        assert_eq!(t.get(&keys, 400), None);
        assert_eq!(t.internal_nodes(), keys.len() - 1);
    }

    #[test]
    fn sparse_keys_with_shared_prefixes() {
        let keys = [
            0u64,
            1,
            0xFF00,
            0xFF01,
            0xFF00_0000,
            0xFF00_0001,
            u64::MAX - 1,
            u64::MAX,
        ];
        let t = Trie::build(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(&keys, k), Some(i), "key {k:#x}");
        }
        for miss in [2u64, 0xFF02, 0xFE00, u64::MAX - 2] {
            assert_eq!(t.get(&keys, miss), None, "miss {miss:#x}");
        }
    }

    #[test]
    fn agrees_with_binary_search() {
        let keys: Vec<u64> = (0..500).map(|i| i * 37 + (i % 3) * 1000).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let t = Trie::build(&sorted);
        for probe in 0..20_000u64 {
            assert_eq!(
                t.get(&sorted, probe),
                binary_search_index(&sorted, probe),
                "probe {probe}"
            );
        }
    }
}
