//! **Leap-COP** — consistency-oblivious programming over plain STM: the
//! read-only prefix (search + node construction) runs uninstrumented, then
//! a single transaction re-validates the prefix *and performs every write
//! transactionally* (paper §1.2). Compared with LT, the transaction is
//! longer (it carries the pointer surgery, not just lock acquisition) and
//! range queries / lookups behave the same, so the evaluation isolates the
//! cost of transactional writes.

use crate::node::internal_key;
use crate::plan::{plan_remove, plan_update, RemovePlan, UpdatePlan};
use crate::raw::RawLeapList;
use crate::variants::common;
use crate::Params;
use leap_ebr::pin;
use leap_stm::{Backoff, Mode, StmDomain, TxResult, Txn};
use std::sync::Arc;

/// A Leap-List synchronized with COP (validation + transactional writes).
///
/// # Example
///
/// ```
/// use leaplist::{LeapListCop, Params};
/// let list: LeapListCop<u64> = LeapListCop::new(Params::default());
/// list.update(1, 11);
/// assert_eq!(list.lookup(1), Some(11));
/// assert_eq!(list.range_query(0, 5), vec![(1, 11)]);
/// ```
pub struct LeapListCop<V> {
    raw: RawLeapList<V>,
    domain: Arc<StmDomain>,
}

impl<V: Clone + Send + Sync + 'static> LeapListCop<V> {
    /// Creates an empty list with its own write-back domain.
    pub fn new(params: Params) -> Self {
        Self::with_domain(params, Arc::new(StmDomain::new()))
    }

    /// Creates an empty list on a shared domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain is write-through: COP publishes new nodes via
    /// transactional pointer writes and relies on them being invisible
    /// until commit.
    pub fn with_domain(params: Params, domain: Arc<StmDomain>) -> Self {
        assert_eq!(
            domain.mode(),
            Mode::WriteBack,
            "LeapListCop requires a write-back domain"
        );
        LeapListCop {
            raw: RawLeapList::with_slr_domain(params, Some(domain.clone())),
            domain,
        }
    }

    /// Creates `n` lists sharing one fresh domain.
    pub fn group(n: usize, params: Params) -> Vec<Self> {
        let domain = Arc::new(StmDomain::new());
        (0..n)
            .map(|_| Self::with_domain(params.clone(), domain.clone()))
            .collect()
    }

    /// The transactional domain (statistics, sharing).
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    /// Inserts or updates `key -> value`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn update(&self, key: u64, value: V) -> Option<V> {
        Self::update_batch(&[self], &[key], std::slice::from_ref(&value))
            .pop()
            // INVARIANT: one input list produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn remove(&self, key: u64) -> Option<V> {
        Self::remove_batch(&[self], &[key])
            .pop()
            // INVARIANT: one input list produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Composite multi-list update (one transaction across all lists).
    ///
    /// # Panics
    ///
    /// Panics if slices differ in length, a key is `u64::MAX`, lists do
    /// not share a domain, or a list repeats.
    pub fn update_batch(lists: &[&Self], keys: &[u64], values: &[V]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        assert_eq!(keys.len(), values.len());
        // INVARIANT: documented panic — an empty batch is a caller bug.
        let first = lists.first().expect("batch must be non-empty");
        first.check_batch(lists, keys);
        let guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let plans: Vec<UpdatePlan<V>> = lists
                .iter()
                .zip(keys.iter().zip(values.iter()))
                // SAFETY: `guard` pins the epoch for the whole attempt.
                .map(|(l, (k, v))| unsafe { plan_update(&l.raw, internal_key(*k), v.clone()) })
                .collect();
            let mut tx = Txn::begin(&first.domain);
            let done: TxResult<()> = (|| {
                for plan in &plans {
                    // SAFETY: plan pointers are protected by `guard`.
                    let v = unsafe { common::validate_update(&mut tx, plan) }?;
                    // SAFETY: plan nodes are unpublished (exclusive); window
                    // nodes validated by this transaction.
                    unsafe { common::wire_update_tx(&mut tx, plan, &v.n_next) }?;
                }
                Ok(())
            })();
            if done.is_ok() && tx.commit().is_ok() {
                let mut out = Vec::with_capacity(plans.len());
                for plan in &plans {
                    plan.mark_published();
                    // SAFETY: the committed swing unlinked `plan.n`; the
                    // grace period covers in-flight readers.
                    // lint:allow(reclamation-discipline): the COP variant has no version
                    // bundles and no snapshot pins — every reader reaches nodes through
                    // the live structure only, so the plain EBR grace period is the full
                    // safety argument.
                    unsafe { guard.defer_drop_box(plan.n) };
                    out.push(plan.old_value.clone());
                }
                return out;
            }
            drop(plans);
            backoff.snooze();
        }
    }

    /// Composite multi-list remove (one transaction across all lists).
    ///
    /// # Panics
    ///
    /// As for [`LeapListCop::update_batch`].
    pub fn remove_batch(lists: &[&Self], keys: &[u64]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        // INVARIANT: documented panic — an empty batch is a caller bug.
        let first = lists.first().expect("batch must be non-empty");
        first.check_batch(lists, keys);
        let guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let plans: Vec<Option<RemovePlan<V>>> = lists
                .iter()
                .zip(keys.iter())
                // SAFETY: `guard` pins the epoch for the whole attempt.
                .map(|(l, k)| unsafe { plan_remove(&l.raw, internal_key(*k)) })
                .collect();
            let mut tx = Txn::begin(&first.domain);
            let done: TxResult<()> = (|| {
                for plan in plans.iter().flatten() {
                    // SAFETY: plan pointers are protected by `guard`.
                    let v = unsafe { common::validate_remove(&mut tx, plan) }?;
                    // SAFETY: plan nodes are unpublished (exclusive); window
                    // nodes validated by this transaction.
                    unsafe { common::wire_remove_tx(&mut tx, plan, &v.n0_next, &v.n1_next) }?;
                }
                Ok(())
            })();
            if done.is_ok() && tx.commit().is_ok() {
                let mut out = Vec::with_capacity(plans.len());
                for plan in &plans {
                    match plan {
                        None => out.push(None),
                        Some(p) => {
                            p.mark_published();
                            // SAFETY: the committed swing unlinked `n0`; the
                            // grace period covers in-flight readers.
                            // lint:allow(reclamation-discipline): COP has no snapshot
                            // readers (no bundles, no pins); plain EBR suffices.
                            unsafe { guard.defer_drop_box(p.n0) };
                            if p.merge {
                                // SAFETY: the merge swing unlinked `n1` too.
                                // lint:allow(reclamation-discipline): as above — COP has
                                // no snapshot readers, plain EBR suffices.
                                unsafe { guard.defer_drop_box(p.n1) };
                            }
                            out.push(Some(p.old_value.clone()));
                        }
                    }
                }
                return out;
            }
            drop(plans);
            backoff.snooze();
        }
    }

    fn check_batch(&self, lists: &[&Self], keys: &[u64]) {
        assert!(!lists.is_empty(), "batch must be non-empty");
        for k in keys {
            assert!(*k < u64::MAX, "key u64::MAX is reserved");
        }
        for (i, l) in lists.iter().enumerate() {
            assert!(
                Arc::ptr_eq(&l.domain, &self.domain),
                "batched lists must share one StmDomain"
            );
            for m in &lists[..i] {
                assert!(
                    !std::ptr::eq(*l as *const Self, *m as *const Self),
                    "a list may appear only once per batch"
                );
            }
        }
    }

    /// Linearizable lookup (identical to LT's: COP search, no transaction).
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn lookup(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let _guard = pin();
        // SAFETY: `_guard` pins the epoch for the whole lookup.
        unsafe { common::cop_lookup(&self.raw, internal_key(key)) }
    }

    /// Linearizable range query (identical structure to LT's).
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        let (ilo, ihi) = (internal_key(lo), internal_key(hi));
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: `_guard` pins the epoch for the whole attempt.
            let w = unsafe { self.raw.search_predecessors(ilo) };
            let mut tx = Txn::begin(&self.domain);
            // SAFETY: validated collect under `_guard`.
            let nodes = unsafe { common::collect_range(&mut tx, w.target(), ihi) };
            if let Ok(nodes) = nodes {
                if tx.commit().is_ok() {
                    // SAFETY: nodes captured by validated reads, still under
                    // `_guard`; `data` is immutable.
                    return unsafe { common::extract_pairs(&nodes, ilo, ihi) };
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Approximate number of keys (naked walk; exact when quiescent).
    pub fn len(&self) -> usize {
        let _guard = pin();
        self.raw.len_unsynced()
    }

    /// Whether the list holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapListCop<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapListCop")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        }
    }

    #[test]
    fn roundtrip_and_splits() {
        let l: LeapListCop<u64> = LeapListCop::new(small());
        for k in 0..80u64 {
            assert_eq!(l.update(k, k + 1), None);
        }
        for k in 0..80u64 {
            assert_eq!(l.lookup(k), Some(k + 1));
        }
        assert_eq!(l.update(5, 99), Some(6));
        for k in 0..40u64 {
            assert_eq!(
                l.remove(k * 2),
                Some(if k * 2 == 5 { 99 } else { k * 2 + 1 })
            );
        }
        assert_eq!(l.len(), 40);
    }

    #[test]
    fn range_query_snapshot_contents() {
        let l: LeapListCop<u64> = LeapListCop::new(small());
        for k in 0..30u64 {
            l.update(k, 1000 + k);
        }
        assert_eq!(l.range_query(28, 40), vec![(28, 1028), (29, 1029)]);
    }

    #[test]
    fn batch_is_atomic_per_call() {
        let lists = LeapListCop::<u64>::group(3, small());
        let refs: Vec<&_> = lists.iter().collect();
        LeapListCop::update_batch(&refs, &[7, 7, 7], &[1, 2, 3]);
        assert_eq!(lists[0].lookup(7), Some(1));
        assert_eq!(lists[1].lookup(7), Some(2));
        assert_eq!(lists[2].lookup(7), Some(3));
    }

    #[test]
    #[should_panic(expected = "write-back")]
    fn rejects_write_through_domains() {
        let d = Arc::new(StmDomain::with_config(Mode::WriteThrough, 10));
        let _l: LeapListCop<u64> = LeapListCop::with_domain(small(), d);
    }
}
