//! **Leap-rwlock** — the coarse reader-writer-lock baseline (paper §3):
//! lookups and range queries take the read lock, updates and removes the
//! write lock. Read-side scalability is fine; any modification serializes
//! the whole list, which is exactly the bottleneck the evaluation shows.

use crate::node::{free_node, internal_key};
use crate::plan::{plan_remove, plan_update};
use crate::raw::RawLeapList;
use crate::variants::common;
use crate::wire::{wire_remove, wire_update};
use crate::Params;
use parking_lot::RwLock;

/// A Leap-List guarded by one reader-writer lock.
///
/// No epochs and no transactions: the write lock excludes every reader, so
/// replaced nodes are freed immediately.
///
/// # Example
///
/// ```
/// use leaplist::{LeapListRwlock, Params};
/// let list: LeapListRwlock<u64> = LeapListRwlock::new(Params::default());
/// list.update(8, 80);
/// assert_eq!(list.lookup(8), Some(80));
/// assert_eq!(list.range_query(0, 10), vec![(8, 80)]);
/// ```
pub struct LeapListRwlock<V> {
    inner: RwLock<RawLeapList<V>>,
}

impl<V: Clone + Send + Sync + 'static> LeapListRwlock<V> {
    /// Creates an empty list.
    pub fn new(params: Params) -> Self {
        LeapListRwlock {
            inner: RwLock::new(RawLeapList::new(params)),
        }
    }

    /// Creates `n` independent lists (the rwlock variant needs no shared
    /// domain; this mirrors the other variants' constructors).
    pub fn group(n: usize, params: Params) -> Vec<Self> {
        (0..n).map(|_| Self::new(params.clone())).collect()
    }

    /// Inserts or updates `key -> value` under the write lock.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn update(&self, key: u64, value: V) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let raw = self.inner.write();
        // SAFETY: the write lock excludes all other access, which subsumes
        // the epoch-guard requirement; nothing is mid-release.
        unsafe {
            let plan = plan_update(&raw, internal_key(key), value);
            wire_update(&plan);
            free_node(plan.n);
            plan.old_value.clone()
        }
    }

    /// Removes `key` under the write lock.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn remove(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let raw = self.inner.write();
        // SAFETY: as in `update`.
        unsafe {
            let plan = plan_remove(&raw, internal_key(key))?;
            wire_remove(&plan);
            free_node(plan.n0);
            if plan.merge {
                free_node(plan.n1);
            }
            Some(plan.old_value.clone())
        }
    }

    /// Applies all `(key, value)` updates to the given lists as one atomic
    /// action by taking every write lock (in address order, to avoid
    /// deadlock against concurrent batches).
    ///
    /// # Panics
    ///
    /// Panics if slices differ in length, a key is `u64::MAX`, or a list
    /// repeats.
    pub fn update_batch(lists: &[&Self], keys: &[u64], values: &[V]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        assert_eq!(keys.len(), values.len());
        let _guards = Self::lock_all(lists);
        lists
            .iter()
            .zip(keys.iter().zip(values.iter()))
            .map(|(l, (k, v))| {
                assert!(*k < u64::MAX, "key u64::MAX is reserved");
                // SAFETY: all write locks held.
                unsafe {
                    let raw = &*l.inner.data_ptr();
                    let plan = plan_update(raw, internal_key(*k), v.clone());
                    wire_update(&plan);
                    free_node(plan.n);
                    plan.old_value.clone()
                }
            })
            .collect()
    }

    /// Removes all `keys` from the given lists as one atomic action.
    ///
    /// # Panics
    ///
    /// As for [`LeapListRwlock::update_batch`].
    pub fn remove_batch(lists: &[&Self], keys: &[u64]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        let _guards = Self::lock_all(lists);
        lists
            .iter()
            .zip(keys.iter())
            .map(|(l, k)| {
                assert!(*k < u64::MAX, "key u64::MAX is reserved");
                // SAFETY: all write locks held.
                unsafe {
                    let raw = &*l.inner.data_ptr();
                    let plan = plan_remove(raw, internal_key(*k))?;
                    wire_remove(&plan);
                    free_node(plan.n0);
                    if plan.merge {
                        free_node(plan.n1);
                    }
                    Some(plan.old_value.clone())
                }
            })
            .collect()
    }

    fn lock_all<'a>(lists: &[&'a Self]) -> Vec<parking_lot::RwLockWriteGuard<'a, RawLeapList<V>>> {
        let mut order: Vec<&'a Self> = lists.to_vec();
        order.sort_by_key(|l| *l as *const Self as usize);
        for w in order.windows(2) {
            assert!(
                !std::ptr::eq(w[0] as *const Self, w[1] as *const Self),
                "a list may appear only once per batch"
            );
        }
        order.iter().map(|l| l.inner.write()).collect()
    }

    /// Lookup under the read lock.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn lookup(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let raw = self.inner.read();
        // SAFETY: the read lock excludes writers (and thus reclamation).
        unsafe { common::cop_lookup(&raw, internal_key(key)) }
    }

    /// Range query under the read lock (no transaction needed: the lock
    /// itself provides the snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        let (ilo, ihi) = (internal_key(lo), internal_key(hi));
        let raw = self.inner.read();
        // SAFETY: read lock held throughout.
        unsafe {
            let w = raw.search_predecessors(ilo);
            let mut nodes = Vec::new();
            let mut n = w.target();
            loop {
                nodes.push(n);
                if (*n).high >= ihi {
                    break;
                }
                n = (*n).next[0].naked_load().as_ptr();
            }
            common::extract_pairs(&nodes, ilo, ihi)
        }
    }

    /// Exact number of keys (under the read lock).
    pub fn len(&self) -> usize {
        self.inner.read().len_unsynced()
    }

    /// Whether the list holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapListRwlock<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapListRwlock")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        }
    }

    #[test]
    fn roundtrip_with_splits_and_merges() {
        let l: LeapListRwlock<u64> = LeapListRwlock::new(small());
        for k in 0..50u64 {
            assert_eq!(l.update(k, k * 7), None);
        }
        assert_eq!(l.len(), 50);
        for k in 0..50u64 {
            assert_eq!(l.lookup(k), Some(k * 7));
        }
        for k in 0..45u64 {
            assert_eq!(l.remove(k), Some(k * 7));
        }
        assert_eq!(l.len(), 5);
        assert_eq!(l.range_query(0, 100).len(), 5);
    }

    #[test]
    fn batch_locks_in_address_order() {
        let lists = LeapListRwlock::<u64>::group(3, small());
        // Scramble the reference order: lock_all must still work.
        let refs = vec![&lists[2], &lists[0], &lists[1]];
        let old = LeapListRwlock::update_batch(&refs, &[1, 1, 1], &[10, 20, 30]);
        assert_eq!(old, vec![None; 3]);
        assert_eq!(lists[2].lookup(1), Some(10));
        assert_eq!(lists[0].lookup(1), Some(20));
        assert_eq!(lists[1].lookup(1), Some(30));
    }

    #[test]
    fn remove_absent_returns_none() {
        let l: LeapListRwlock<u64> = LeapListRwlock::new(small());
        assert_eq!(l.remove(3), None);
        l.update(3, 1);
        assert_eq!(l.remove(3), Some(1));
        assert_eq!(l.remove(3), None);
    }
}
