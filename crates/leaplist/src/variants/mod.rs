//! The four synchronization schemes evaluated by the paper.

pub mod cop;
pub mod lt;
pub mod rwlock;
pub mod tm;

pub(crate) mod common;
