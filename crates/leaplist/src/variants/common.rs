//! Validation logic shared by the LT and COP variants, plus the COP-style
//! lookup and range query (paper Figs. 4 and 5) that both use.
//!
//! The validations are the transactional re-checks of Figs. 9 and 12: the
//! read-only COP prefix (search + node construction) ran without any
//! synchronization, so before acting the transaction must confirm the
//! window is still exactly what the prefix saw — every node live, every
//! predecessor pointer unmoved, nothing marked by a competing operation.

use crate::node::{Node, MAX_LEVEL_CAP};
use crate::plan::{ChainSegment, RemovePlan, UpdatePlan};
use crate::raw::RawLeapList;
use leap_stm::{TaggedPtr, TxResult, Txn};

/// Captured window pointers: the values read (and validated) inside the
/// transaction, reused by the marking pass and by the transactional wiring
/// of the COP variant.
pub(crate) struct ValidatedUpdate<V> {
    pub n_next: [TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
    pub pa_next: [TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
}

/// Re-validates an update window inside `tx` (paper Fig. 9 lines 95-104).
///
/// # Safety
///
/// Plan pointers must be protected by the caller's epoch guard.
pub(crate) unsafe fn validate_update<'t, V: 'static>(
    tx: &mut Txn<'t>,
    plan: &UpdatePlan<V>,
) -> TxResult<ValidatedUpdate<V>> {
    // SAFETY: guard-protected plan pointers throughout.
    unsafe {
        let n = &*plan.n;
        if !tx.read(&n.live)? {
            return Err(tx.explicit_abort());
        }
        let mut out = ValidatedUpdate {
            n_next: [TaggedPtr::null(); MAX_LEVEL_CAP],
            pa_next: [TaggedPtr::null(); MAX_LEVEL_CAP],
        };
        // The replaced node's outgoing pointers: unmarked, successors live.
        for i in 0..n.level {
            if plan.w.na[i] != plan.n {
                // The search window is internally stale (it raced a
                // release phase): abort and redo the whole operation.
                return Err(tx.explicit_abort());
            }
            let s = tx.read(&n.next[i])?;
            if s.is_marked() {
                return Err(tx.explicit_abort());
            }
            if !s.is_null() && !tx.read(&(*s.as_ptr()).live)? {
                return Err(tx.explicit_abort());
            }
            out.n_next[i] = s;
        }
        // The predecessor window up to the wiring height: pointers unmoved
        // and unmarked, endpoints live.
        for i in 0..plan.max_height {
            let pa = plan.w.pa[i];
            let pn = tx.read(&(*pa).next[i])?;
            if pn.is_marked() || pn.as_ptr() != plan.w.na[i] {
                return Err(tx.explicit_abort());
            }
            if !tx.read(&(*pa).live)? {
                return Err(tx.explicit_abort());
            }
            if !tx.read(&(*plan.w.na[i]).live)? {
                return Err(tx.explicit_abort());
            }
            out.pa_next[i] = pn;
        }
        Ok(out)
    }
}

/// Captured window pointers for a remove.
pub(crate) struct ValidatedRemove<V> {
    pub n0_next: [TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
    pub n1_next: [TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
    pub pa_next: [TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
}

/// Re-validates a remove window inside `tx` (paper Fig. 12 lines 175-197).
///
/// # Safety
///
/// Same contract as [`validate_update`].
pub(crate) unsafe fn validate_remove<'t, V: 'static>(
    tx: &mut Txn<'t>,
    plan: &RemovePlan<V>,
) -> TxResult<ValidatedRemove<V>> {
    // SAFETY: guard-protected plan pointers.
    unsafe {
        let n0 = &*plan.n0;
        if !tx.read(&n0.live)? {
            return Err(tx.explicit_abort());
        }
        if plan.merge && !tx.read(&(*plan.n1).live)? {
            return Err(tx.explicit_abort());
        }
        let mut out = ValidatedRemove {
            n0_next: [TaggedPtr::null(); MAX_LEVEL_CAP],
            n1_next: [TaggedPtr::null(); MAX_LEVEL_CAP],
            pa_next: [TaggedPtr::null(); MAX_LEVEL_CAP],
        };
        // n0's window.
        for i in 0..n0.level {
            if plan.w.na[i] != plan.n0 {
                return Err(tx.explicit_abort());
            }
            let pa = plan.w.pa[i];
            let pn = tx.read(&(*pa).next[i])?;
            if pn.is_marked() || pn.as_ptr() != plan.n0 {
                return Err(tx.explicit_abort());
            }
            if !tx.read(&(*pa).live)? {
                return Err(tx.explicit_abort());
            }
            let s = tx.read(&n0.next[i])?;
            if s.is_marked() {
                return Err(tx.explicit_abort());
            }
            if !s.is_null() && !tx.read(&(*s.as_ptr()).live)? {
                return Err(tx.explicit_abort());
            }
            out.n0_next[i] = s;
            out.pa_next[i] = pn;
        }
        if plan.merge {
            let n1 = &*plan.n1;
            // Still adjacent (Fig. 12 line 183).
            if out.n0_next[0].as_ptr() != plan.n1 {
                return Err(tx.explicit_abort());
            }
            // Upper window where the successor is taller than n0.
            for i in n0.level..n1.level {
                if plan.w.na[i] != plan.n1 {
                    return Err(tx.explicit_abort());
                }
                let pa = plan.w.pa[i];
                let pn = tx.read(&(*pa).next[i])?;
                if pn.is_marked() || pn.as_ptr() != plan.n1 {
                    return Err(tx.explicit_abort());
                }
                if !tx.read(&(*pa).live)? {
                    return Err(tx.explicit_abort());
                }
                out.pa_next[i] = pn;
            }
            // n1's outgoing pointers: unmarked, successors live.
            for i in 0..n1.level {
                let s = tx.read(&n1.next[i])?;
                if s.is_marked() {
                    return Err(tx.explicit_abort());
                }
                if !s.is_null() && !tx.read(&(*s.as_ptr()).live)? {
                    return Err(tx.explicit_abort());
                }
                out.n1_next[i] = s;
            }
        }
        Ok(out)
    }
}

/// Captured window and chain pointers of a validated [`ChainSegment`].
pub(crate) struct ValidatedSegment<V> {
    /// The validated (unmarked) outgoing pointers of the dying nodes,
    /// flattened in (node, level) order — node `j`'s `level` entries
    /// follow node `j-1`'s (the marking pass replays the same order).
    pub old_next: Vec<TaggedPtr<Node<V>>>,
    /// `pa_next[i]` — the validated value of `pa[i].next[i]` for every
    /// level below the wiring height.
    pub pa_next: Vec<TaggedPtr<Node<V>>>,
}

/// Re-validates a multi-op segment inside `tx`: every dying node is still
/// live with unmarked outgoing pointers, the level-0 chain is still exactly
/// the planned run, and each predecessor-window pointer still leads to the
/// segment's first node of that level (or, above the old chain's height,
/// to the live external successor the new chain will exit to). This is the
/// k-op generalization of [`validate_update`] / [`validate_remove`].
///
/// # Safety
///
/// Segment pointers must be protected by the caller's epoch guard.
pub(crate) unsafe fn validate_segment<'t, V: 'static>(
    tx: &mut Txn<'t>,
    seg: &ChainSegment<V>,
) -> TxResult<ValidatedSegment<V>> {
    // SAFETY: guard-protected segment pointers throughout.
    unsafe {
        let olds = &seg.old;
        for &o in olds {
            if !tx.read(&(*o).live)? {
                return Err(tx.explicit_abort());
            }
        }
        // The window still targets the segment's first node.
        if seg.w.na[0] != olds[0] {
            return Err(tx.explicit_abort());
        }
        let total_levels: usize = olds.iter().map(|&o| (*o).level).sum();
        let mut out = ValidatedSegment {
            old_next: Vec::with_capacity(total_levels),
            pa_next: Vec::with_capacity(seg.wire_height),
        };
        // Outgoing pointers of every dying node: unmarked, level-0
        // adjacency intact, external successors live.
        for (j, &op) in olds.iter().enumerate() {
            let o = &*op;
            for i in 0..o.level {
                let s = tx.read(&o.next[i])?;
                if s.is_marked() {
                    return Err(tx.explicit_abort());
                }
                if i == 0 && j + 1 < olds.len() && s.as_ptr() != olds[j + 1] {
                    return Err(tx.explicit_abort());
                }
                let p = s.as_ptr();
                if !p.is_null() && !olds.contains(&p) && !tx.read(&(*p).live)? {
                    return Err(tx.explicit_abort());
                }
                out.old_next.push(s);
            }
        }
        // The predecessor window up to the wiring height.
        for i in 0..seg.wire_height {
            let expected: *mut Node<V> = if i < seg.old_max {
                *olds
                    .iter()
                    .find(|&&o| (*o).level > i)
                    // INVARIANT: i < old_max and old_max is max over the
                    // old run's levels, so a witness node exists.
                    .expect("old_max is the maximum old level")
            } else {
                seg.w.na[i]
            };
            let pa = seg.w.pa[i];
            let pn = tx.read(&(*pa).next[i])?;
            if pn.is_marked() || pn.as_ptr() != expected {
                return Err(tx.explicit_abort());
            }
            if !tx.read(&(*pa).live)? {
                return Err(tx.explicit_abort());
            }
            // Above the old chain, `na[i]` is the new chain's exit target:
            // it must still be live (below it, `expected` is a dying node
            // already live-checked above).
            if i >= seg.old_max && !tx.read(&(*expected).live)? {
                return Err(tx.explicit_abort());
            }
            out.pa_next.push(pn);
        }
        Ok(out)
    }
}

/// The LT acquisition pass for a multi-op segment: mark every dying node's
/// outgoing pointers and the predecessor window, then kill the dying
/// nodes, all transactionally.
///
/// # Safety
///
/// Same contract as [`validate_segment`].
pub(crate) unsafe fn mark_segment<'t, V: 'static>(
    tx: &mut Txn<'t>,
    seg: &ChainSegment<V>,
    v: &ValidatedSegment<V>,
) -> TxResult<()> {
    // SAFETY: guard-protected segment pointers.
    unsafe {
        let mut flat = v.old_next.iter();
        for &op in &seg.old {
            let o = &*op;
            for i in 0..o.level {
                // INVARIANT: `validate_segment` pushed exactly one value
                // per old-node level in this same iteration order.
                let val = flat.next().expect("one validated value per level");
                tx.write(&o.next[i], val.marked())?;
            }
        }
        for i in 0..seg.wire_height {
            tx.write(&(*seg.w.pa[i]).next[i], v.pa_next[i].marked())?;
        }
        for &o in &seg.old {
            tx.write(&(*o).live, false)?;
        }
    }
    Ok(())
}

/// Transactional wiring of an update (used by the COP and TM variants,
/// which perform the pointer surgery *inside* the transaction rather than
/// after it). The replacement nodes' own fields are written naked — they
/// are private until the predecessor writes commit — which is only sound
/// under a write-back domain (asserted at construction of those variants).
///
/// # Safety
///
/// Plan pointers guard-protected; `n_next[i]` must hold the validated
/// (unmarked) outgoing pointers of the replaced node.
// Lock-step level-indexed walks over fixed-size pointer arrays: the
// index couples several arrays, so iterator rewrites obscure the wiring.
#[allow(clippy::needless_range_loop)]
pub(crate) unsafe fn wire_update_tx<'t, V: 'static>(
    tx: &mut Txn<'t>,
    plan: &UpdatePlan<V>,
    n_next: &[TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
) -> TxResult<()> {
    // SAFETY: guard-protected plan pointers.
    unsafe {
        let n0 = &*plan.n0;
        if plan.split {
            let n1 = &*plan.n1;
            let (l0, l1) = (n0.level, n1.level);
            for i in 0..l1 {
                n1.next[i].naked_store(n_next[i]);
            }
            for i in 0..l0.min(l1) {
                n0.next[i].naked_store(TaggedPtr::new(plan.n1));
            }
            for i in l1..l0 {
                n0.next[i].naked_store(TaggedPtr::new(plan.w.na[i]));
            }
            n0.live.naked_store(true);
            n1.live.naked_store(true);
            for i in 0..l0 {
                tx.write(&(*plan.w.pa[i]).next[i], TaggedPtr::new(plan.n0))?;
            }
            for i in l0..l1 {
                tx.write(&(*plan.w.pa[i]).next[i], TaggedPtr::new(plan.n1))?;
            }
        } else {
            for i in 0..n0.level {
                n0.next[i].naked_store(n_next[i]);
            }
            n0.live.naked_store(true);
            for i in 0..n0.level {
                tx.write(&(*plan.w.pa[i]).next[i], TaggedPtr::new(plan.n0))?;
            }
        }
        tx.write(&(*plan.n).live, false)?;
    }
    Ok(())
}

/// Transactional wiring of a remove (COP and TM variants).
///
/// # Safety
///
/// As for [`wire_update_tx`]; `n0_next`/`n1_next` hold the validated
/// outgoing pointers of the removed node(s).
// Lock-step level-indexed walks over fixed-size pointer arrays: the
// index couples several arrays, so iterator rewrites obscure the wiring.
#[allow(clippy::needless_range_loop)]
pub(crate) unsafe fn wire_remove_tx<'t, V: 'static>(
    tx: &mut Txn<'t>,
    plan: &RemovePlan<V>,
    n0_next: &[TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
    n1_next: &[TaggedPtr<Node<V>>; MAX_LEVEL_CAP],
) -> TxResult<()> {
    // SAFETY: guard-protected plan pointers.
    unsafe {
        let nn = &*plan.n_new;
        if plan.merge {
            let n1_level = (*plan.n1).level;
            for i in 0..n1_level.min(nn.level) {
                nn.next[i].naked_store(n1_next[i]);
            }
            for i in n1_level..nn.level {
                nn.next[i].naked_store(n0_next[i]);
            }
        } else {
            for i in 0..nn.level {
                nn.next[i].naked_store(n0_next[i]);
            }
        }
        nn.live.naked_store(true);
        for i in 0..nn.level {
            tx.write(&(*plan.w.pa[i]).next[i], TaggedPtr::new(plan.n_new))?;
        }
        tx.write(&(*plan.n0).live, false)?;
        if plan.merge {
            tx.write(&(*plan.n1).live, false)?;
        }
    }
    Ok(())
}

/// COP lookup (paper Fig. 4): an uninstrumented predecessor search followed
/// by an intra-node index probe. Linearizable because the search only
/// traverses committed live nodes and node contents are immutable.
///
/// # Safety
///
/// Caller holds an epoch guard.
pub(crate) unsafe fn cop_lookup<V: Clone>(raw: &RawLeapList<V>, ik: u64) -> Option<V> {
    // SAFETY: caller holds the epoch guard (this fn's `# Safety` contract).
    let w = unsafe { raw.search_predecessors(ik) };
    // SAFETY: observed live under the guard; contents immutable.
    let n = unsafe { &*w.target() };
    n.index_of(ik, &raw.params).map(|i| n.data[i].1.clone())
}

/// COP range query (paper Fig. 5): search uninstrumented, then collect the
/// node chain inside a transaction that checks liveness of each node and
/// reads each level-0 pointer transactionally. Returns the collected node
/// pointers (the caller extracts pairs from their immutable arrays).
///
/// # Safety
///
/// Caller holds an epoch guard; returned pointers are valid under it.
pub(crate) unsafe fn collect_range<'t, V: 'static>(
    tx: &mut Txn<'t>,
    start: *mut Node<V>,
    ihi: u64,
) -> TxResult<Vec<*mut Node<V>>> {
    let mut nodes = Vec::new();
    let mut n = start;
    loop {
        // SAFETY: start observed by the search under the guard; successors
        // reached through validated transactional reads.
        let node = unsafe { &*n };
        if !tx.read(&node.live)? {
            return Err(tx.explicit_abort());
        }
        nodes.push(n);
        if node.high >= ihi {
            return Ok(nodes);
        }
        let s = tx.read(&node.next[0])?;
        // Paper line 41: traverse through a partially released pointer by
        // stripping the mark; the liveness check above decides validity.
        let next = s.unmarked().as_ptr();
        debug_assert!(!next.is_null(), "tail.high = +inf terminates the walk");
        n = next;
    }
}

/// Number of pairs in `node` with internal keys in `[ilo, ihi]` — safe to
/// compute mid-transaction because node contents are immutable once
/// published; the commit validates that the node belonged to the snapshot.
fn pairs_in<V>(node: &Node<V>, ilo: u64, ihi: u64) -> usize {
    let start = node.data.partition_point(|(k, _)| *k < ilo);
    node.data[start..]
        .iter()
        .take_while(|(k, _)| *k <= ihi)
        .count()
}

/// Like [`collect_range`] but stops as soon as the collected nodes hold at
/// least `limit` pairs in `[ilo, ihi]` — the engine of the paged range
/// query: a bounded page never walks (or validates) more nodes than it
/// needs, so page cost is `O(limit / K)` regardless of the range's width.
///
/// # Safety
///
/// As for [`collect_range`].
pub(crate) unsafe fn collect_range_bounded<'t, V: 'static>(
    tx: &mut Txn<'t>,
    start: *mut Node<V>,
    ilo: u64,
    ihi: u64,
    limit: usize,
) -> TxResult<Vec<*mut Node<V>>> {
    let mut nodes = Vec::new();
    let mut pairs = 0usize;
    let mut n = start;
    loop {
        // SAFETY: start observed by the search under the guard; successors
        // reached through validated transactional reads.
        let node = unsafe { &*n };
        if !tx.read(&node.live)? {
            return Err(tx.explicit_abort());
        }
        nodes.push(n);
        pairs += pairs_in(node, ilo, ihi);
        if node.high >= ihi || pairs >= limit {
            return Ok(nodes);
        }
        let s = tx.read(&node.next[0])?;
        let next = s.unmarked().as_ptr();
        debug_assert!(!next.is_null(), "tail.high = +inf terminates the walk");
        n = next;
    }
}

/// Counts the pairs with internal keys in `[ilo, ihi]` inside the
/// transactional walk itself: no node buffer, no value clones — the
/// count-only path under `count_range` / `len`.
///
/// # Safety
///
/// As for [`collect_range`].
pub(crate) unsafe fn count_range_tx<'t, V: 'static>(
    tx: &mut Txn<'t>,
    start: *mut Node<V>,
    ilo: u64,
    ihi: u64,
) -> TxResult<usize> {
    let mut count = 0usize;
    let mut n = start;
    loop {
        // SAFETY: as for `collect_range_bounded`.
        let node = unsafe { &*n };
        if !tx.read(&node.live)? {
            return Err(tx.explicit_abort());
        }
        count += pairs_in(node, ilo, ihi);
        if node.high >= ihi {
            return Ok(count);
        }
        let s = tx.read(&node.next[0])?;
        let next = s.unmarked().as_ptr();
        debug_assert!(!next.is_null(), "tail.high = +inf terminates the walk");
        n = next;
    }
}

/// Extracts the pairs with internal keys in `[ilo, ihi]` from a collected
/// node chain.
///
/// # Safety
///
/// Node pointers must still be guard-protected.
pub(crate) unsafe fn extract_pairs<V: Clone>(
    nodes: &[*mut Node<V>],
    ilo: u64,
    ihi: u64,
) -> Vec<(u64, V)> {
    let mut out = Vec::new();
    for &n in nodes {
        // SAFETY: guard-protected; data immutable.
        let node = unsafe { &*n };
        let start = node.data.partition_point(|(k, _)| *k < ilo);
        for (k, v) in &node.data[start..] {
            if *k > ihi {
                break;
            }
            out.push((crate::node::public_key(*k), v.clone()));
        }
    }
    out
}
