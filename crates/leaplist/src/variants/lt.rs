//! **Leap-LT** — the paper's proposed algorithm (§2): COP searches plus
//! *Locking Transactions*. The transaction is used only to validate the
//! uninstrumented prefix and to acquire logical locks (mark the window
//! pointers, clear the `live` bits); the actual pointer surgery runs after
//! commit as plain atomic stores, and lookups execute no transaction at
//! all. Range queries execute one instrumented access per node, i.e. per
//! `K` keys.

use crate::node::{internal_key, Node};
use crate::plan::{plan_multi, ListOp, MultiUpdatePlan};
use crate::raw::RawLeapList;
use crate::variants::common;
use crate::{BatchOp, Params};
use leap_ebr::pin;
use leap_stm::{Backoff, StmDomain, TxResult, Txn};
use std::sync::Arc;

/// Reports one committed retry loop (attempts = snoozes + the successful
/// try) to the domain's recorder, if one is attached. The disabled path is
/// a single relaxed load.
#[inline]
fn record_commit(domain: &StmDomain, backoff: &Backoff) {
    if let Some(rec) = domain.recorder() {
        rec.record_attempts(u64::from(backoff.attempts()) + 1);
    }
}

/// A Leap-List synchronized with the paper's Locking-Transactions scheme.
///
/// This is the headline structure: linearizable `update` / `remove` /
/// `lookup` / `range_query`, with composable multi-list
/// [`LeapListLt::update_batch`] / [`LeapListLt::remove_batch`] when lists
/// share a domain (see [`LeapListLt::group`]).
///
/// # Example
///
/// ```
/// use leaplist::{LeapListLt, Params};
/// let list: LeapListLt<u64> = LeapListLt::new(Params::default());
/// list.update(10, 100);
/// list.update(20, 200);
/// assert_eq!(list.lookup(10), Some(100));
/// assert_eq!(list.range_query(0, 50), vec![(10, 100), (20, 200)]);
/// assert_eq!(list.remove(20), Some(200));
/// ```
pub struct LeapListLt<V> {
    raw: RawLeapList<V>,
    domain: Arc<StmDomain>,
    /// High-water mark of the level-0 bundle depth observed by this list's
    /// commits (diagnostics: bounded by commits-per-pin-lifetime + 1).
    bundle_depth: std::sync::atomic::AtomicU64,
    /// Retired nodes parked until no snapshot pin can still resolve onto
    /// them (see [`crate::bundle::Limbo`]): plain EBR deferral is not
    /// enough for nodes a bundle walk can reach back in time.
    limbo: crate::bundle::Limbo<V>,
}

impl<V: Clone + Send + Sync + 'static> LeapListLt<V> {
    /// Creates an empty list with its own transactional domain.
    pub fn new(params: Params) -> Self {
        Self::with_domain(params, Arc::new(StmDomain::new()))
    }

    /// Creates an empty list on a shared domain. Lists that participate in
    /// the same batched updates must share a domain.
    pub fn with_domain(params: Params, domain: Arc<StmDomain>) -> Self {
        LeapListLt {
            raw: RawLeapList::with_slr_domain(params, Some(domain.clone())),
            domain,
            bundle_depth: std::sync::atomic::AtomicU64::new(1),
            limbo: crate::bundle::Limbo::new(),
        }
    }

    /// Creates `n` lists sharing one fresh domain — the paper's `L`
    /// Leap-Lists (`L = 4` in the evaluation), e.g. one per table index.
    pub fn group(n: usize, params: Params) -> Vec<Self> {
        let domain = Arc::new(StmDomain::new());
        (0..n)
            .map(|_| Self::with_domain(params.clone(), domain.clone()))
            .collect()
    }

    /// The transactional domain (statistics, sharing).
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    /// The structure parameters.
    pub fn params(&self) -> &Params {
        &self.raw.params
    }

    /// Inserts or updates `key -> value`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (reserved for the tail sentinel).
    pub fn update(&self, key: u64, value: V) -> Option<V> {
        let ops = [BatchOp::Update(key, value)];
        self.apply_grouped_on(&[self], &[&ops])
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one list yields one result")
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one op yields one result")
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn remove(&self, key: u64) -> Option<V> {
        let ops = [BatchOp::Remove(key)];
        self.apply_grouped_on(&[self], &[&ops])
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one list yields one result")
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one op yields one result")
    }

    /// The paper's composite `Update(ll, k, v, s)`: applies
    /// `lists[j].update(keys[j], values[j])` for all `j` as **one**
    /// linearizable action. Returns the previous values.
    ///
    /// Delegates to [`LeapListLt::apply_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, any key is `u64::MAX`, lists
    /// do not share one domain, or the same list appears twice.
    pub fn update_batch(lists: &[&Self], keys: &[u64], values: &[V]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        assert_eq!(keys.len(), values.len());
        let ops: Vec<BatchOp<V>> = keys
            .iter()
            .zip(values.iter())
            .map(|(k, v)| BatchOp::Update(*k, v.clone()))
            .collect();
        Self::apply_batch(lists, &ops)
    }

    /// The paper's composite `Remove(ll, k, s)`: removes `keys[j]` from
    /// `lists[j]` for all `j` as one linearizable action.
    ///
    /// Delegates to [`LeapListLt::apply_batch`].
    ///
    /// # Panics
    ///
    /// As for [`LeapListLt::update_batch`].
    pub fn remove_batch(lists: &[&Self], keys: &[u64]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        let ops: Vec<BatchOp<V>> = keys.iter().map(|k| BatchOp::Remove(*k)).collect();
        Self::apply_batch(lists, &ops)
    }

    fn check_batch(&self, lists: &[&Self], keys: &[u64]) {
        assert!(!lists.is_empty(), "batch must be non-empty");
        for k in keys {
            assert!(*k < u64::MAX, "key u64::MAX is reserved");
        }
        for (i, l) in lists.iter().enumerate() {
            assert!(
                Arc::ptr_eq(&l.domain, &self.domain),
                "batched lists must share one StmDomain"
            );
            for m in &lists[..i] {
                assert!(
                    !std::ptr::eq(*l as *const Self, *m as *const Self),
                    "a list may appear only once per batch"
                );
            }
        }
    }

    /// Applies a **mixed** batch — updates and removes interleaved — to the
    /// given lists as one linearizable action, one op per list. This
    /// generalizes the paper's homogeneous `Update`/`Remove` composites
    /// (§2) and is what an in-memory database needs to move a row between
    /// secondary-index buckets atomically (the paper's future-work
    /// application, §4).
    ///
    /// Delegates to [`LeapListLt::apply_batch_grouped`] with one-op
    /// groups. Returns the previous value per component.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, any key is `u64::MAX`,
    /// lists do not share one domain, or the same list appears twice.
    pub fn apply_batch(lists: &[&Self], ops: &[BatchOp<V>]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), ops.len());
        let groups: Vec<&[BatchOp<V>]> = ops.iter().map(std::slice::from_ref).collect();
        Self::apply_batch_grouped(lists, &groups)
            .into_iter()
            // INVARIANT: `from_ref` groups hold exactly one op each.
            .map(|mut r| r.pop().expect("one op per list yields one result"))
            .collect()
    }

    /// Applies **k operations per list** — updates and removes interleaved,
    /// duplicate keys allowed — across multiple lists as **one**
    /// linearizable action: a single locking transaction validates and
    /// acquires every affected node chain in every list, and the chains
    /// are wired after commit. `ops[j]` is the op group for `lists[j]`,
    /// applied in group order (so `[Update(k, 1), Update(k, 2)]` leaves
    /// `k -> 2` and returns `[None, Some(1)]`).
    ///
    /// This is the primitive a sharded store needs to commit a batch that
    /// maps several keys to one shard without serializing writers: the
    /// per-list chain rebuild (see `plan.rs`) runs outside the
    /// transaction, keeping the paper's wiring-only-transaction property
    /// at any batch size.
    ///
    /// Returns the previous values per list, in group order. Empty groups
    /// yield empty result vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, the batch is empty, any key
    /// is `u64::MAX`, lists do not share one domain, or the same list
    /// appears twice.
    pub fn apply_batch_grouped(lists: &[&Self], ops: &[&[BatchOp<V>]]) -> Vec<Vec<Option<V>>> {
        // INVARIANT: documented panic — an empty batch is a caller bug.
        let first = lists.first().expect("batch must be non-empty");
        first.apply_grouped_on(lists, ops)
    }

    fn apply_grouped_on(&self, lists: &[&Self], ops: &[&[BatchOp<V>]]) -> Vec<Vec<Option<V>>> {
        assert_eq!(lists.len(), ops.len());
        let keys: Vec<u64> = ops
            .iter()
            .flat_map(|g| {
                g.iter().map(|op| match op {
                    BatchOp::Update(k, _) => *k,
                    BatchOp::Remove(k) => *k,
                })
            })
            .collect();
        self.check_batch(lists, &keys);
        let groups: Vec<Vec<ListOp<'_, V>>> = ops
            .iter()
            .map(|g| {
                g.iter()
                    .map(|op| match op {
                        BatchOp::Update(k, v) => ListOp::Put(internal_key(*k), v),
                        BatchOp::Remove(k) => ListOp::Del(internal_key(*k)),
                    })
                    .collect()
            })
            .collect();
        let guard = pin();
        let mut backoff = Backoff::new();
        loop {
            // Setup: per-list chain rebuild (COP searches + replacement
            // chain construction), entirely outside the transaction.
            let plans: Vec<MultiUpdatePlan<V>> = lists
                .iter()
                .zip(groups.iter())
                // SAFETY: `guard` pins the epoch for this whole loop body.
                .map(|(l, g)| unsafe { plan_multi(&l.raw, g) })
                .collect();
            // LT: one transaction validates and acquires every segment of
            // every list — in two passes, validation before any marking,
            // because same-commit segments may share window TVars (a tall
            // dying node of one segment can be another's level-i
            // predecessor): a validation reading a pointer the previous
            // segment already marked would abort forever.
            let mut tx = Txn::begin(&self.domain);
            let acquired: TxResult<()> = (|| {
                let mut validated = Vec::new();
                for plan in &plans {
                    for seg in &plan.segments {
                        // SAFETY: plan pointers are protected by `guard`.
                        validated.push(unsafe { common::validate_segment(&mut tx, seg) }?);
                    }
                }
                let mut v = validated.iter();
                for plan in &plans {
                    for seg in &plan.segments {
                        // INVARIANT: the first pass pushed one entry per
                        // segment in the same iteration order.
                        let vs = v.next().expect("one validation per segment");
                        // SAFETY: plan pointers are protected by `guard`.
                        unsafe { common::mark_segment(&mut tx, seg, vs) }?;
                    }
                }
                Ok(())
            })();
            // Register as wiring *before* the commit can bump the clock:
            // while the ticket is live, no snapshot can pin a timestamp
            // at-or-past this commit's `wv`, so the post-commit pointer
            // surgery and bundle stamping below are invisible to every
            // pinnable snapshot. The ticket drops on every exit path.
            let ticket = self.domain.begin_wiring();
            if acquired.is_ok() {
                if let Ok(wv) = tx.commit_stamped() {
                    record_commit(&self.domain, &backoff);
                    let bound = self.domain.prune_bound();
                    // Release-and-update: wire every chain, stamp version
                    // bundles, collect the dying runs for parking.
                    let mut out = Vec::with_capacity(plans.len());
                    let mut retired: Vec<Vec<*mut _>> = Vec::with_capacity(plans.len());
                    for (plan, list) in plans.into_iter().zip(lists.iter()) {
                        let mut plan = plan;
                        let mut depth = 0u64;
                        let mut dying = Vec::new();
                        for seg in &plan.segments {
                            // SAFETY: the committed transaction owns every
                            // marked window, `guard` protects the plan's
                            // pointers, and the live wiring ticket hides
                            // the intermediate states from snapshots.
                            unsafe {
                                // Wire the chain internals, stamp bundles
                                // while the level-0 lease is still held,
                                // then publish (swing + live).
                                crate::wire::wire_chain(seg);
                                depth =
                                    depth
                                        .max(crate::bundle::stamp_segment(seg, wv, bound, &guard)
                                            as u64);
                                crate::wire::publish_segment(seg);
                            }
                            dying.extend_from_slice(&seg.old);
                        }
                        plan.mark_published();
                        retired.push(dying);
                        list.bundle_depth
                            // ORDERING: monotonic stat counter; readers
                            // only need an eventual high-water mark.
                            .fetch_max(depth, std::sync::atomic::Ordering::Relaxed);
                        out.push(std::mem::take(&mut plan.results));
                    }
                    drop(ticket);
                    // Retire the dying nodes only now, with a bound read
                    // after the wiring window closed: a snapshot pinned at
                    // `ts < wv` may still resolve bundles onto them, so
                    // they park in the limbo until the prune bound passes
                    // `wv`, and only then enter the EBR queue.
                    let drain_bound = self.domain.prune_bound();
                    for (list, dying) in lists.iter().zip(retired) {
                        // SAFETY: `dying` nodes were unlinked by the
                        // publish swings above and stamped `retired_ts ==
                        // wv`; `drain_bound` was read after the ticket
                        // dropped (wiring window closed).
                        unsafe { list.limbo.park_and_drain(wv, dying, drain_bound, &guard) };
                    }
                    return out;
                }
            }
            drop(ticket);
            drop(plans); // frees the unpublished replacement chains
            backoff.snooze();
        }
    }

    /// Linearizable lookup (Fig. 4) — **no transaction at all**, the key
    /// performance property of LT.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn lookup(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let _guard = pin();
        // SAFETY: `_guard` pins the epoch for the whole lookup.
        unsafe { common::cop_lookup(&self.raw, internal_key(key)) }
    }

    /// Linearizable range query (Fig. 5): returns every pair with key in
    /// `[lo, hi]`, from a single consistent snapshot. One instrumented
    /// access per node, i.e. per up-to-`K` keys.
    ///
    /// Returns an empty vector when `lo > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        Self::range_query_group(&[self], &[(lo, hi)])
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Linearizable **multi-list** range query: collects `ranges[j]` over
    /// `lists[j]` with every node-chain walk inside **one** transaction on
    /// the shared domain, so the combined result is a single consistent
    /// snapshot across all lists. This is the group-snapshot primitive a
    /// sharded store needs: a cross-shard range assembled from per-shard
    /// snapshots taken at one linearization point can never observe half
    /// of a committed multi-list batch.
    ///
    /// `ranges[j] = (lo, hi)` is inclusive; an inverted range yields an
    /// empty vector for that list. The same list may appear more than once
    /// (the query is read-only).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, the group is empty, any
    /// `hi == u64::MAX`, or the lists do not share one domain.
    pub fn range_query_group(lists: &[&Self], ranges: &[(u64, u64)]) -> Vec<Vec<(u64, V)>> {
        Self::group_snapshot(
            lists,
            ranges,
            // SAFETY: node pointers are guard-protected by `group_snapshot`
            // for the closure's whole call.
            |tx, start, _ilo, ihi| unsafe { common::collect_range(tx, start, ihi) },
            // SAFETY: as above; `extract` only sees nodes `collect` captured.
            |nodes, ilo, ihi| unsafe { common::extract_pairs(&nodes, ilo, ihi) },
        )
    }

    /// A bounded **page** of a linearizable multi-list range query: like
    /// [`LeapListLt::range_query_group`] but each list yields at most
    /// `limit` pairs, and the transactional walk stops as soon as the page
    /// is full — a page over a million-key range costs `O(limit / K)`
    /// instrumented node accesses per list, not `O(range / K)`. The caller
    /// resumes from `last_key + 1`; each page is its own consistent
    /// snapshot (the cursor contract a store scan needs).
    ///
    /// # Panics
    ///
    /// As for [`LeapListLt::range_query_group`], plus if `limit` is zero
    /// (an empty page cannot carry a resume key).
    pub fn range_page_group(
        lists: &[&Self],
        ranges: &[(u64, u64)],
        limit: usize,
    ) -> Vec<Vec<(u64, V)>> {
        assert!(limit > 0, "a page must hold at least one pair");
        Self::group_snapshot(
            lists,
            ranges,
            // SAFETY: node pointers are guard-protected by `group_snapshot`
            // for the closure's whole call.
            |tx, start, ilo, ihi| unsafe {
                common::collect_range_bounded(tx, start, ilo, ihi, limit)
            },
            |nodes, ilo, ihi| {
                // SAFETY: as above; only nodes `collect` captured.
                let mut pairs = unsafe { common::extract_pairs(&nodes, ilo, ihi) };
                pairs.truncate(limit);
                pairs
            },
        )
    }

    /// Single-list page: up to `limit` pairs with keys in `[lo, hi]`,
    /// ascending, from one consistent snapshot. See
    /// [`LeapListLt::range_page_group`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX` or `limit` is zero.
    pub fn range_page(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, V)> {
        Self::range_page_group(&[self], &[(lo, hi)], limit)
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Like [`LeapListLt::range_query_group`] but returns only the number
    /// of pairs per list: the count accumulates inside the transactional
    /// walk itself — no value clones and no node buffer.
    ///
    /// # Panics
    ///
    /// As for [`LeapListLt::range_query_group`].
    pub fn count_range_group(lists: &[&Self], ranges: &[(u64, u64)]) -> Vec<usize> {
        Self::group_snapshot(
            lists,
            ranges,
            // SAFETY: node pointers are guard-protected by `group_snapshot`
            // for the closure's whole call.
            |tx, start, ilo, ihi| unsafe { common::count_range_tx(tx, start, ilo, ihi) },
            |count, _, _| count,
        )
    }

    /// Shared engine of the group queries: run `collect` over every list
    /// inside one transaction (its commit is the snapshot's linearization
    /// point), then map each list's collected state through `extract`,
    /// still under the epoch guard. Arguments after the transaction /
    /// start node are `(ilo, ihi)` in internal-key space; `collect` must
    /// only traverse validated pointers and `extract` must only
    /// dereference nodes `collect` captured.
    fn group_snapshot<C, R: Default>(
        lists: &[&Self],
        ranges: &[(u64, u64)],
        collect: impl for<'t> Fn(&mut Txn<'t>, *mut Node<V>, u64, u64) -> TxResult<C>,
        extract: impl Fn(C, u64, u64) -> R,
    ) -> Vec<R> {
        assert_eq!(lists.len(), ranges.len());
        // INVARIANT: documented panic — an empty group is a caller bug.
        let first = lists.first().expect("group must be non-empty");
        for l in lists {
            assert!(
                Arc::ptr_eq(&l.domain, &first.domain),
                "grouped lists must share one StmDomain"
            );
        }
        for (_, hi) in ranges {
            assert!(*hi < u64::MAX, "key u64::MAX is reserved");
        }
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            // COP prefix: uninstrumented predecessor search per list.
            let starts: Vec<Option<(*mut Node<V>, u64, u64)>> = lists
                .iter()
                .zip(ranges.iter())
                .map(|(l, &(lo, hi))| {
                    if lo > hi {
                        return None;
                    }
                    let (ilo, ihi) = (internal_key(lo), internal_key(hi));
                    // SAFETY: `_guard` pins the epoch for the whole loop.
                    let w = unsafe { l.raw.search_predecessors(ilo) };
                    Some((w.target(), ilo, ihi))
                })
                .collect();
            // One transaction validates every list's node chain; its commit
            // is the snapshot's linearization point.
            let mut tx = Txn::begin(&first.domain);
            let collected: TxResult<Vec<Option<C>>> = starts
                .iter()
                .map(|s| match s {
                    None => Ok(None),
                    Some((start, ilo, ihi)) => collect(&mut tx, *start, *ilo, *ihi).map(Some),
                })
                .collect();
            if let Ok(per_list) = collected {
                if tx.commit().is_ok() {
                    record_commit(&first.domain, &backoff);
                    return per_list
                        .into_iter()
                        .zip(starts.iter())
                        .map(|(c, s)| match (c, s) {
                            (Some(c), Some((_, ilo, ihi))) => extract(c, *ilo, *ihi),
                            _ => R::default(),
                        })
                        .collect();
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Pins a snapshot of every list sharing this list's domain: the
    /// returned handle carries a snapshot timestamp (the newest fully
    /// wired commit) and, while live, keeps every version visible at it
    /// traversable — bundle pruning and node reclamation both respect it.
    ///
    /// See [`ListSnapshot`] for the read API and the cost of holding one.
    pub fn pin_snapshot(&self) -> ListSnapshot {
        ListSnapshot::pin(&self.domain)
    }

    /// Up to `limit` pairs with keys in `[lo, hi]`, ascending, **as of the
    /// snapshot's timestamp** — a transaction-free, retry-free bundle walk
    /// that concurrent commits can never abort or skew. Pages taken from
    /// one [`ListSnapshot`] (over any lists of its domain) are mutually
    /// consistent: they all observe exactly the commits at-or-before its
    /// timestamp.
    ///
    /// The caller resumes from `last_key + 1`; a short page means the
    /// range is exhausted *at the snapshot* (the live list may differ).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was pinned on a different domain, if
    /// `hi == u64::MAX`, or if `limit` is zero.
    pub fn snapshot_page(
        &self,
        snap: &ListSnapshot,
        lo: u64,
        hi: u64,
        limit: usize,
    ) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        self.snapshot_page_into(snap, lo, hi, limit, &mut out);
        out
    }

    /// As [`LeapListLt::snapshot_page`], appending into `out` (at most
    /// `limit` pairs) — the allocation-reusing form a store's cross-shard
    /// page merge wants.
    ///
    /// # Panics
    ///
    /// As for [`LeapListLt::snapshot_page`].
    pub fn snapshot_page_into(
        &self,
        snap: &ListSnapshot,
        lo: u64,
        hi: u64,
        limit: usize,
        out: &mut Vec<(u64, V)>,
    ) {
        assert!(
            snap.pin.pinned_on(&self.domain),
            "snapshot was pinned on a different StmDomain"
        );
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        assert!(limit > 0, "a page must hold at least one pair");
        if lo > hi {
            return;
        }
        // SAFETY: `snap` pinned its epoch guard before its timestamp (see
        // `ListSnapshot::pin`), and its SnapshotPin keeps the prune bound
        // at-or-below `ts` — exactly `snapshot_collect`'s contract.
        unsafe {
            crate::bundle::snapshot_collect(
                &self.raw,
                snap.ts(),
                internal_key(lo),
                internal_key(hi),
                limit,
                out,
            );
        }
    }

    /// High-water mark of this list's level-0 version-bundle depth (1 for
    /// a list that never committed under a live snapshot pin; grows with
    /// commits-per-pin-lifetime and shrinks back via pruning on append).
    pub fn max_bundle_depth(&self) -> u64 {
        // ORDERING: diagnostic high-water read; no publication rides on it.
        self.bundle_depth.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Whether `key` is present (linearizable, transaction-free).
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn contains_key(&self, key: u64) -> bool {
        self.lookup(key).is_some()
    }

    /// Number of keys in `[lo, hi]` from one consistent snapshot, without
    /// cloning any values.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        Self::count_range_group(&[self], &[(lo, hi)])
            .pop()
            // INVARIANT: one input list/op produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// The smallest key and its value, from a consistent snapshot.
    pub fn first_key_value(&self) -> Option<(u64, V)> {
        // Smallest possible range start: collect nodes from the first one
        // until a non-empty node appears, all inside one transaction.
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: `_guard` pins the epoch for the whole iteration.
            let w = unsafe { self.raw.search_predecessors(1) };
            let mut tx = Txn::begin(&self.domain);
            let found: leap_stm::TxResult<Option<(u64, V)>> = (|| {
                let mut n = w.target();
                loop {
                    // SAFETY: reached under guard via validated reads.
                    let node = unsafe { &*n };
                    if !tx.read(&node.live)? {
                        return Err(tx.explicit_abort());
                    }
                    if let Some((k, v)) = node.data.first() {
                        return Ok(Some((crate::node::public_key(*k), v.clone())));
                    }
                    if node.high == u64::MAX {
                        return Ok(None);
                    }
                    let s = tx.read(&node.next[0])?;
                    n = s.unmarked().as_ptr();
                }
            })();
            if let Ok(r) = found {
                if tx.commit().is_ok() {
                    record_commit(&self.domain, &backoff);
                    return r;
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// The largest key and its value, from a consistent snapshot.
    ///
    /// Walks the bottom level from the predecessor of +inf, so it is O(1)
    /// expected (the last node), falling back to a scan when trailing
    /// nodes are empty.
    pub fn last_key_value(&self) -> Option<(u64, V)> {
        // Simplest consistent implementation: snapshot the full range and
        // take the maximum of the trailing non-empty node. The collect
        // walks from the node containing the largest real key.
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            // Predecessor window of the +inf sentinel: pa[0] is the last
            // node with high < MAX. Its keys (or an earlier node's, if
            // it is empty) are the largest — but emptiness forces a
            // restart from the head for simplicity.
            // SAFETY: `_guard` pins the epoch for the whole iteration.
            let w = unsafe { self.raw.search_predecessors(u64::MAX) };
            let mut tx = Txn::begin(&self.domain);
            let found: leap_stm::TxResult<Option<(u64, V)>> = (|| {
                // The tail (high == +inf) holds the largest keys when it
                // is non-empty; otherwise its predecessor does. Validate
                // both nodes and their adjacency so the answer is a
                // consistent snapshot.
                // SAFETY: search result under `_guard`; liveness is
                // validated transactionally right below.
                let tail = unsafe { &*w.target() };
                if !tx.read(&tail.live)? {
                    return Err(tx.explicit_abort());
                }
                if let Some((k, v)) = tail.data.last() {
                    return Ok(Some((crate::node::public_key(*k), v.clone())));
                }
                // SAFETY: predecessor-window node under `_guard`.
                let prev = unsafe { &*w.pa[0] };
                if !tx.read(&prev.live)? {
                    return Err(tx.explicit_abort());
                }
                let link = tx.read(&prev.next[0])?;
                if link.is_marked() || link.as_ptr() != w.target() {
                    return Err(tx.explicit_abort());
                }
                if let Some((k, v)) = prev.data.last() {
                    return Ok(Some((crate::node::public_key(*k), v.clone())));
                }
                // Both trailing nodes empty: fall back to a full snapshot
                // scan (rare — only after removals emptied the tail region).
                // SAFETY: fallback search under `_guard`.
                let head_w = unsafe { self.raw.search_predecessors(1) };
                // SAFETY: validated collect, also under `_guard`.
                let nodes = unsafe { common::collect_range(&mut tx, head_w.target(), u64::MAX) }?;
                for &n in nodes.iter().rev() {
                    // SAFETY: node captured by the validated collect above,
                    // still under `_guard`; `data` is immutable.
                    if let Some((k, v)) = unsafe { &*n }.data.last() {
                        return Ok(Some((crate::node::public_key(*k), v.clone())));
                    }
                }
                Ok(None)
            })();
            if let Ok(r) = found {
                if tx.commit().is_ok() {
                    record_commit(&self.domain, &backoff);
                    return r;
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Approximate number of keys (naked walk; exact when quiescent).
    pub fn len(&self) -> usize {
        let _guard = pin();
        self.raw.len_unsynced()
    }

    /// Whether the list holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates node populations (diagnostics for split/merge tests).
    pub fn node_sizes(&self) -> Vec<usize> {
        let _guard = pin();
        let mut sizes = Vec::new();
        // SAFETY: advisory diagnostic under guard.
        unsafe {
            self.raw.for_each_node(|n| sizes.push(n.count()));
        }
        sizes
    }
}

/// A pinned, multi-list snapshot over one [`StmDomain`]: every
/// [`LeapListLt::snapshot_page`] taken through it — across any lists of
/// the domain — observes exactly the commits at-or-before
/// [`ListSnapshot::ts`], the newest fully wired commit at pin time.
///
/// **Cost of holding one:** while the snapshot is live, (a) version
/// bundles retain one entry per covered commit (bounded memory per write),
/// and (b) the embedded epoch guard holds back node reclamation
/// process-wide. Drop it as soon as the scan finishes. The handle embeds
/// a thread-local epoch guard and is therefore neither `Send` nor `Sync`.
pub struct ListSnapshot {
    /// Epoch guard — pinned FIRST, so any node retired after the
    /// timestamp below was chosen is reclamation-protected.
    _guard: leap_ebr::Guard,
    pin: leap_stm::SnapshotPin,
}

impl ListSnapshot {
    /// Pins a snapshot of every list sharing `domain`. The guard is
    /// pinned before the timestamp is chosen — the order the safety of
    /// every subsequent bundle walk rests on.
    pub fn pin(domain: &Arc<StmDomain>) -> ListSnapshot {
        let guard = pin();
        let pin = domain.pin_snapshot();
        ListSnapshot { _guard: guard, pin }
    }

    /// The pinned snapshot timestamp.
    pub fn ts(&self) -> u64 {
        self.pin.ts()
    }
}

impl std::fmt::Debug for ListSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ListSnapshot")
            .field("ts", &self.ts())
            .finish()
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapListLt<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapListLt")
            .field("len", &self.len())
            .field("params", &self.raw.params)
            .finish()
    }
}

// Used by `update`/`remove` delegating through slices of `&Self`.
#[allow(dead_code)]
fn _assert_traits<V: Clone + Send + Sync + 'static>() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LeapListLt<V>>();
    assert_send_sync::<Node<V>>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        }
    }

    #[test]
    fn update_lookup_remove_roundtrip() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        assert_eq!(l.lookup(7), None);
        assert_eq!(l.update(7, 70), None);
        assert_eq!(l.lookup(7), Some(70));
        assert_eq!(l.update(7, 71), Some(70));
        assert_eq!(l.lookup(7), Some(71));
        assert_eq!(l.remove(7), Some(71));
        assert_eq!(l.remove(7), None);
        assert!(l.is_empty());
    }

    #[test]
    fn splits_keep_all_keys_reachable() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..100u64 {
            l.update(k, k * 2);
        }
        assert_eq!(l.len(), 100);
        for k in 0..100u64 {
            assert_eq!(l.lookup(k), Some(k * 2), "key {k}");
        }
        // With node_size 4, 100 keys must have split many times.
        assert!(l.node_sizes().len() > 10);
        for s in l.node_sizes() {
            assert!(s <= 4, "node exceeded K");
        }
    }

    #[test]
    fn merges_shrink_node_count() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..64u64 {
            l.update(k, k);
        }
        let before = l.node_sizes().len();
        for k in 0..56u64 {
            assert_eq!(l.remove(k), Some(k));
        }
        let after = l.node_sizes().len();
        assert!(
            after < before,
            "merges must shrink node count ({before} -> {after})"
        );
        for k in 56..64u64 {
            assert_eq!(l.lookup(k), Some(k));
        }
    }

    #[test]
    fn range_query_is_sorted_and_inclusive() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in (0..50u64).rev() {
            l.update(k * 2, k);
        }
        let r = l.range_query(10, 20);
        assert_eq!(
            r,
            vec![(10, 5), (12, 6), (14, 7), (16, 8), (18, 9), (20, 10)]
        );
        assert_eq!(l.range_query(21, 21), vec![]);
        assert_eq!(l.range_query(30, 10), vec![], "inverted range is empty");
    }

    #[test]
    fn batch_update_applies_to_all_lists() {
        let lists = LeapListLt::<u64>::group(4, small());
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let old = LeapListLt::update_batch(&refs, &[1, 2, 3, 4], &[10, 20, 30, 40]);
        assert_eq!(old, vec![None; 4]);
        for (i, l) in lists.iter().enumerate() {
            assert_eq!(l.lookup(i as u64 + 1), Some((i as u64 + 1) * 10));
        }
        let old = LeapListLt::remove_batch(&refs, &[1, 2, 99, 4]);
        assert_eq!(old, vec![Some(10), Some(20), None, Some(40)]);
        assert_eq!(
            lists[2].lookup(3),
            Some(30),
            "absent key leaves list 3 intact"
        );
    }

    #[test]
    fn group_range_query_spans_lists() {
        let lists = LeapListLt::<u64>::group(3, small());
        for (i, l) in lists.iter().enumerate() {
            for k in 0..10u64 {
                l.update(k + i as u64 * 100, k);
            }
        }
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let out = LeapListLt::range_query_group(&refs, &[(0, 5), (100, 105), (300, 400)]);
        assert_eq!(out[0], (0..=5).map(|k| (k, k)).collect::<Vec<_>>());
        assert_eq!(out[1].len(), 6);
        assert!(out[2].is_empty(), "list 2 holds 200..209 only");
        // Inverted ranges are empty; duplicates of one list are allowed.
        let out = LeapListLt::range_query_group(&refs[..2], &[(5, 0), (201, 200)]);
        assert!(out[0].is_empty() && out[1].is_empty());
        let dup = LeapListLt::range_query_group(&[&lists[0], &lists[0]], &[(0, 2), (3, 5)]);
        assert_eq!(dup[0].len() + dup[1].len(), 6);
    }

    #[test]
    fn group_count_matches_group_range() {
        let lists = LeapListLt::<u64>::group(2, small());
        for k in 0..30u64 {
            lists[0].update(k, k);
            lists[1].update(k * 2, k);
        }
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let ranges = [(5, 20), (40, 10)];
        let pairs = LeapListLt::range_query_group(&refs, &ranges);
        let counts = LeapListLt::count_range_group(&refs, &ranges);
        assert_eq!(counts, vec![pairs[0].len(), pairs[1].len()]);
        assert_eq!(counts, vec![16, 0], "inverted range counts zero");
    }

    #[test]
    fn range_page_bounds_and_resumes() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..100u64 {
            l.update(k * 2, k);
        }
        // Pages tile the full range when resumed from last_key + 1.
        let mut collected = Vec::new();
        let mut lo = 0u64;
        loop {
            let page = l.range_page(lo, 198, 7);
            assert!(page.len() <= 7, "page overflowed its limit");
            let Some(&(last, _)) = page.last() else { break };
            collected.extend(page);
            lo = last + 1;
        }
        assert_eq!(collected, l.range_query(0, 198));
        // A page over a huge range still returns promptly and bounded.
        assert_eq!(l.range_page(0, u64::MAX - 1, 3).len(), 3);
        assert_eq!(l.range_page(50, 40, 5), vec![], "inverted range is empty");
        // Group form: per-list limits apply independently.
        let lists = LeapListLt::<u64>::group(2, small());
        for k in 0..20u64 {
            lists[0].update(k, k);
            lists[1].update(k + 100, k);
        }
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let pages = LeapListLt::range_page_group(&refs, &[(0, 99), (0, 999)], 4);
        assert_eq!(pages[0].len(), 4);
        assert_eq!(pages[1].len(), 4);
        assert_eq!(pages[1][0].0, 100);
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_limit_page_rejected() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        l.range_page(0, 10, 0);
    }

    #[test]
    fn grouped_batch_commits_k_ops_per_list_atomically() {
        let lists = LeapListLt::<u64>::group(2, small());
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        // Seed list 1 so the grouped batch exercises updates and removes.
        lists[1].update(500, 1);
        let g0: Vec<BatchOp<u64>> = (0..10u64).map(|k| BatchOp::Update(k, k * 10)).collect();
        let g1 = vec![
            BatchOp::Update(500, 2),
            BatchOp::Remove(500),
            BatchOp::Remove(777),
        ];
        let out = LeapListLt::apply_batch_grouped(&refs, &[&g0, &g1]);
        assert_eq!(out[0], vec![None; 10]);
        assert_eq!(out[1], vec![Some(1), Some(2), None]);
        for k in 0..10u64 {
            assert_eq!(lists[0].lookup(k), Some(k * 10));
        }
        assert!(lists[1].is_empty());
        // With node_size 4, ten keys into an empty list must have produced
        // a multi-node chain in one commit.
        assert!(lists[0].node_sizes().len() >= 3);
        for s in lists[0].node_sizes() {
            assert!(s <= 4, "chain rebuild exceeded K");
        }
    }

    #[test]
    fn grouped_batch_duplicate_keys_apply_in_order() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        let ops = vec![
            BatchOp::Update(5, 10),
            BatchOp::Update(5, 11),
            BatchOp::Update(6, 60),
        ];
        let out = LeapListLt::apply_batch_grouped(&[&l], &[&ops]);
        assert_eq!(out, vec![vec![None, Some(10), None]]);
        assert_eq!(l.lookup(5), Some(11), "later op on the same key wins");
        assert_eq!(l.lookup(6), Some(60));
    }

    #[test]
    fn grouped_batch_spanning_many_nodes_stays_consistent() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..100u64 {
            l.update(k, k);
        }
        // Keys spread across distant nodes plus a dense cluster: multiple
        // segments, some multi-node.
        let ops: Vec<BatchOp<u64>> = vec![
            BatchOp::Update(0, 1000),
            BatchOp::Remove(1),
            BatchOp::Update(50, 1050),
            BatchOp::Update(51, 1051),
            BatchOp::Update(52, 1052),
            BatchOp::Remove(53),
            BatchOp::Update(99, 1099),
            BatchOp::Update(200, 1200),
        ];
        let out = LeapListLt::apply_batch_grouped(&[&l], &[&ops]);
        assert_eq!(
            out,
            vec![vec![
                Some(0),
                Some(1),
                Some(50),
                Some(51),
                Some(52),
                Some(53),
                Some(99),
                None,
            ]]
        );
        assert_eq!(l.lookup(0), Some(1000));
        assert_eq!(l.lookup(1), None);
        assert_eq!(l.lookup(53), None);
        assert_eq!(l.lookup(200), Some(1200));
        assert_eq!(l.len(), 99);
        let r = l.range_query(0, 300);
        assert_eq!(r.len(), 99);
        assert!(r.windows(2).all(|w| w[0].0 < w[1].0), "range out of order");
    }

    #[test]
    fn grouped_batch_with_empty_group_is_fine() {
        let lists = LeapListLt::<u64>::group(2, small());
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        let g0 = vec![BatchOp::Update(1, 10)];
        let g1: Vec<BatchOp<u64>> = Vec::new();
        let out = LeapListLt::apply_batch_grouped(&refs, &[&g0, &g1]);
        assert_eq!(out, vec![vec![None], vec![]]);
        assert_eq!(lists[0].lookup(1), Some(10));
    }

    #[test]
    #[should_panic(expected = "share one StmDomain")]
    fn group_range_rejects_foreign_domains() {
        let a: LeapListLt<u64> = LeapListLt::new(small());
        let b: LeapListLt<u64> = LeapListLt::new(small());
        LeapListLt::range_query_group(&[&a, &b], &[(0, 1), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "share one StmDomain")]
    fn batch_rejects_foreign_domains() {
        let a: LeapListLt<u64> = LeapListLt::new(small());
        let b: LeapListLt<u64> = LeapListLt::new(small());
        LeapListLt::update_batch(&[&a, &b], &[1, 2], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "only once per batch")]
    fn batch_rejects_duplicate_lists() {
        let a: LeapListLt<u64> = LeapListLt::new(small());
        LeapListLt::update_batch(&[&a, &a], &[1, 2], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_key_is_rejected() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        l.update(u64::MAX, 0);
    }

    #[test]
    fn snapshot_page_ignores_later_commits() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..40u64 {
            l.update(k, k);
        }
        let snap = l.pin_snapshot();
        // Writes after the pin: overwrite, insert, remove.
        l.update(5, 999);
        l.update(1000, 1);
        l.remove(7);
        assert_eq!(l.lookup(5), Some(999));
        let page = l.snapshot_page(&snap, 0, 2000, 1000);
        assert_eq!(
            page,
            (0..40u64).map(|k| (k, k)).collect::<Vec<_>>(),
            "snapshot must show the pre-pin state exactly"
        );
        drop(snap);
        // A fresh snapshot sees the new state.
        let snap2 = l.pin_snapshot();
        let page2 = l.snapshot_page(&snap2, 0, 2000, 1000);
        assert_eq!(page2.len(), 40, "40 - removed 7 + inserted 1000");
        assert!(page2.contains(&(5, 999)) && page2.contains(&(1000, 1)));
        assert!(!page2.iter().any(|&(k, _)| k == 7));
    }

    #[test]
    fn snapshot_pages_tile_while_writers_race() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..100u64 {
            l.update(k * 2, k);
        }
        let snap = l.pin_snapshot();
        let expected: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 2, k)).collect();
        let mut collected = Vec::new();
        let mut lo = 0u64;
        let mut step = 0u64;
        loop {
            let page = l.snapshot_page(&snap, lo, 198, 7);
            // Interleave destructive writes between pages — including
            // deleting the exact key the next resume starts beyond.
            l.remove(step * 14);
            l.update(step * 14 + 1, 12345);
            if page.is_empty() {
                break;
            }
            assert!(page.len() <= 7);
            lo = page.last().expect("non-empty").0 + 1;
            collected.extend(page);
            step += 1;
        }
        assert_eq!(collected, expected, "pages must tile the pinned state");
    }

    #[test]
    fn snapshot_resume_key_survives_boundary_deletion() {
        // Satellite regression: the page boundary falls exactly on a node
        // whose keys are deleted (node replaced) after the pin. The resume
        // must continue from the snapshot-visible chain, not the live one.
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..16u64 {
            l.update(k, k * 10);
        }
        let snap = l.pin_snapshot();
        // First page of 4 ends at key 3; now delete keys 3..=6 — the
        // boundary key and everything the next page should start with —
        // and overwrite key 7, replacing those nodes on the live chain.
        let page1 = l.snapshot_page(&snap, 0, 15, 4);
        assert_eq!(page1, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
        for k in 3..=6u64 {
            l.remove(k);
        }
        l.update(7, 777);
        let page2 = l.snapshot_page(&snap, 4, 15, 4);
        assert_eq!(
            page2,
            vec![(4, 40), (5, 50), (6, 60), (7, 70)],
            "resume must read the snapshot-visible versions"
        );
        // The live list disagrees, proving the pages came from bundles.
        assert_eq!(l.lookup(4), None);
        assert_eq!(l.lookup(7), Some(777));
    }

    #[test]
    fn snapshot_sees_empty_prefix_of_later_inserts() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        let snap = l.pin_snapshot();
        for k in 0..20u64 {
            l.update(k, k);
        }
        assert_eq!(l.snapshot_page(&snap, 0, 100, 50), vec![]);
        let snap2 = l.pin_snapshot();
        assert_eq!(l.snapshot_page(&snap2, 0, 100, 50).len(), 20);
    }

    #[test]
    fn snapshot_spans_lists_of_one_domain() {
        let lists = LeapListLt::<u64>::group(2, small());
        lists[0].update(1, 10);
        lists[1].update(2, 20);
        let snap = lists[0].pin_snapshot();
        lists[0].update(3, 30);
        lists[1].update(4, 40);
        assert_eq!(lists[0].snapshot_page(&snap, 0, 100, 10), vec![(1, 10)]);
        assert_eq!(lists[1].snapshot_page(&snap, 0, 100, 10), vec![(2, 20)]);
    }

    #[test]
    fn retired_nodes_park_until_snapshot_pins_release() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        for k in 0..64u64 {
            l.update(k, k);
        }
        let snap = l.pin_snapshot();
        let before = l.snapshot_page(&snap, 0, 1_000, 1_000);
        assert_eq!(before.len(), 64);
        // Node-replacing churn while the pin is live: every dying run must
        // park in the limbo, not enter the EBR queue — the pinned bundle
        // walk below can still resolve onto those nodes, and EBR's grace
        // period alone would free them two epoch advances later.
        for k in 0..64u64 {
            l.update(k, k + 1_000);
        }
        assert!(l.limbo.parked() > 0, "dying nodes parked under a live pin");
        assert_eq!(l.snapshot_page(&snap, 0, 1_000, 1_000), before);
        drop(snap);
        // The next commit reads a bound past every parked timestamp and
        // drains the lot, its own dying run included.
        l.update(999, 1);
        assert_eq!(l.limbo.parked(), 0, "pin released: limbo drains");
    }

    #[test]
    fn bundle_depth_bounded_without_pins() {
        let l: LeapListLt<u64> = LeapListLt::new(small());
        // Hammer one key: without a live pin, pruning on append keeps the
        // chain at the visible version plus the fresh one.
        for i in 0..500u64 {
            l.update(7, i);
        }
        assert!(
            l.max_bundle_depth() <= 4,
            "unpinned bundles must stay shallow, got {}",
            l.max_bundle_depth()
        );
    }

    #[test]
    #[should_panic(expected = "different StmDomain")]
    fn snapshot_rejects_foreign_domain() {
        let a: LeapListLt<u64> = LeapListLt::new(small());
        let b: LeapListLt<u64> = LeapListLt::new(small());
        let snap = a.pin_snapshot();
        b.snapshot_page(&snap, 0, 1, 1);
    }

    #[test]
    fn update_into_empty_node_after_remove() {
        let l: LeapListLt<u64> = LeapListLt::new(Params {
            node_size: 2,
            ..small()
        });
        l.update(5, 1);
        assert_eq!(l.remove(5), Some(1));
        l.update(5, 2);
        assert_eq!(l.lookup(5), Some(2));
    }

    #[test]
    fn many_keys_with_tiny_nodes() {
        let l: LeapListLt<u64> = LeapListLt::new(Params {
            node_size: 2,
            max_level: 8,
            use_trie: true,
            ..Params::default()
        });
        for k in 0..200u64 {
            l.update(k * 3 % 601, k);
        }
        let r = l.range_query(0, 601);
        assert_eq!(r.len(), 200);
        for w in r.windows(2) {
            assert!(w[0].0 < w[1].0, "range out of order");
        }
    }
}
