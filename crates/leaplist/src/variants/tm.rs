//! **Leap-tm** — the direct-STM baseline: every operation, traversal
//! included, runs inside one transaction (paper §1.2 "Pure STM"). Each
//! pointer hop is an instrumented read, which is precisely the overhead the
//! paper found unacceptable; this variant exists to reproduce that
//! comparison.

use crate::node::{build_remove, build_update, internal_key, Node, MAX_LEVEL_CAP};
use crate::plan::{RemovePlan, UpdatePlan};
use crate::raw::{RawLeapList, SearchWindow};
use crate::variants::common;
use crate::Params;
use leap_ebr::pin;
use leap_stm::{Backoff, Mode, StmDomain, TaggedPtr, TxResult, Txn};
use std::cell::Cell;
use std::sync::Arc;

/// A Leap-List in which every operation is one STM transaction.
///
/// # Example
///
/// ```
/// use leaplist::{LeapListTm, Params};
/// let list: LeapListTm<u64> = LeapListTm::new(Params::default());
/// list.update(2, 22);
/// assert_eq!(list.lookup(2), Some(22));
/// assert_eq!(list.remove(2), Some(22));
/// ```
pub struct LeapListTm<V> {
    raw: RawLeapList<V>,
    domain: Arc<StmDomain>,
}

impl<V: Clone + Send + Sync + 'static> LeapListTm<V> {
    /// Creates an empty list with its own write-back domain.
    pub fn new(params: Params) -> Self {
        Self::with_domain(params, Arc::new(StmDomain::new()))
    }

    /// Creates an empty list on a shared (write-back) domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain is write-through (new nodes are published by
    /// transactional pointer writes and must stay invisible until commit).
    pub fn with_domain(params: Params, domain: Arc<StmDomain>) -> Self {
        assert_eq!(
            domain.mode(),
            Mode::WriteBack,
            "LeapListTm requires a write-back domain"
        );
        LeapListTm {
            raw: RawLeapList::new(params),
            domain,
        }
    }

    /// Creates `n` lists sharing one fresh domain.
    pub fn group(n: usize, params: Params) -> Vec<Self> {
        let domain = Arc::new(StmDomain::new());
        (0..n)
            .map(|_| Self::with_domain(params.clone(), domain.clone()))
            .collect()
    }

    /// The transactional domain (statistics, sharing).
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    /// Fully instrumented predecessor search.
    ///
    /// # Safety
    ///
    /// Caller holds an epoch guard.
    unsafe fn search_tx<'t>(
        raw: &RawLeapList<V>,
        tx: &mut Txn<'t>,
        ik: u64,
    ) -> TxResult<SearchWindow<V>> {
        let mut w = SearchWindow::empty();
        let mut x = raw.head();
        for i in (0..raw.params.max_level).rev() {
            loop {
                // SAFETY: head or a node reached through validated reads,
                // kept allocated by the guard.
                let nxt: TaggedPtr<Node<V>> = tx.read(unsafe { &(*x).next[i] })?;
                let n = nxt.as_ptr();
                debug_assert!(!n.is_null(), "levels terminate at the tail");
                // SAFETY: non-null validated successor, guard-protected;
                // `high` is immutable.
                if unsafe { &*n }.high >= ik {
                    w.pa[i] = x;
                    w.na[i] = n;
                    break;
                }
                x = n;
            }
        }
        Ok(w)
    }

    /// Inserts or updates `key -> value` in one transaction.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn update(&self, key: u64, value: V) -> Option<V> {
        Self::update_batch(&[self], &[key], std::slice::from_ref(&value))
            .pop()
            // INVARIANT: one input list produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Removes `key` in one transaction.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn remove(&self, key: u64) -> Option<V> {
        Self::remove_batch(&[self], &[key])
            .pop()
            // INVARIANT: one input list produces exactly one result entry.
            .expect("one list yields one result")
    }

    /// Composite multi-list update inside a single transaction.
    ///
    /// # Panics
    ///
    /// Panics if slices differ in length, a key is `u64::MAX`, or lists do
    /// not share a domain.
    // Lock-step level-indexed walks over fixed-size pointer arrays: the
    // index couples several arrays, so iterator rewrites obscure the wiring.
    #[allow(clippy::needless_range_loop)]
    pub fn update_batch(lists: &[&Self], keys: &[u64], values: &[V]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        assert_eq!(keys.len(), values.len());
        // INVARIANT: documented panic — an empty batch is a caller bug.
        let first = lists.first().expect("batch must be non-empty");
        first.check_batch(lists, keys);
        let guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&first.domain);
            let mut plans: Vec<UpdatePlan<V>> = Vec::with_capacity(lists.len());
            let body: TxResult<Vec<Option<V>>> = (|| {
                let mut out = Vec::with_capacity(lists.len());
                for ((l, k), v) in lists.iter().zip(keys.iter()).zip(values.iter()) {
                    let ik = internal_key(*k);
                    // SAFETY: `guard` pins the epoch for the whole attempt.
                    let w = unsafe { Self::search_tx(&l.raw, &mut tx, ik) }?;
                    let n = w.target();
                    let b = build_update(
                        // SAFETY: reached through validated reads, under
                        // guard; data is immutable.
                        unsafe { &*n },
                        ik,
                        v.clone(),
                        &l.raw.params,
                        &mut rand::thread_rng(),
                    );
                    let plan = UpdatePlan {
                        w,
                        n,
                        n0: b.n0,
                        n1: b.n1.unwrap_or(std::ptr::null_mut()),
                        split: b.n1.is_some(),
                        max_height: b.max_height,
                        old_value: b.old_value.clone(),
                        published: Cell::new(false),
                    };
                    let mut n_next = [TaggedPtr::null(); MAX_LEVEL_CAP];
                    // SAFETY: `n` stays guard-protected; `level` is
                    // immutable and bounds the live `next` array.
                    for i in 0..unsafe { &*n }.level {
                        // SAFETY: i < n.level indexes in-bounds TVars.
                        n_next[i] = tx.read(unsafe { &(*n).next[i] })?;
                    }
                    // SAFETY: plan nodes are unpublished (exclusive) and
                    // window nodes validated by this transaction.
                    unsafe { common::wire_update_tx(&mut tx, &plan, &n_next) }?;
                    out.push(b.old_value);
                    plans.push(plan);
                }
                Ok(out)
            })();
            match body {
                Ok(out) => {
                    if tx.commit().is_ok() {
                        for plan in &plans {
                            plan.mark_published();
                            // SAFETY: the committed swing unlinked `plan.n`;
                            // the grace period covers in-flight readers.
                            // lint:allow(reclamation-discipline): the TM variant has no version
                            // bundles and no snapshot pins — every reader reaches nodes through
                            // the live transactional structure only, so the plain EBR grace
                            // period is the full safety argument.
                            unsafe { guard.defer_drop_box(plan.n) };
                        }
                        return out;
                    }
                }
                Err(_) => drop(tx),
            }
            drop(plans); // frees unpublished nodes from the failed attempt
            backoff.snooze();
        }
    }

    /// Composite multi-list remove inside a single transaction.
    ///
    /// # Panics
    ///
    /// As for [`LeapListTm::update_batch`].
    // Lock-step level-indexed walks over fixed-size pointer arrays: the
    // index couples several arrays, so iterator rewrites obscure the wiring.
    #[allow(clippy::needless_range_loop)]
    pub fn remove_batch(lists: &[&Self], keys: &[u64]) -> Vec<Option<V>> {
        assert_eq!(lists.len(), keys.len());
        // INVARIANT: documented panic — an empty batch is a caller bug.
        let first = lists.first().expect("batch must be non-empty");
        first.check_batch(lists, keys);
        let guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&first.domain);
            let mut plans: Vec<Option<RemovePlan<V>>> = Vec::with_capacity(lists.len());
            let body: TxResult<Vec<Option<V>>> = (|| {
                let mut out = Vec::with_capacity(lists.len());
                for (l, k) in lists.iter().zip(keys.iter()) {
                    let ik = internal_key(*k);
                    // SAFETY: `guard` pins the epoch for the whole attempt.
                    let w = unsafe { Self::search_tx(&l.raw, &mut tx, ik) }?;
                    let n0 = w.target();
                    // SAFETY: as in update_batch.
                    let n0_ref = unsafe { &*n0 };
                    if n0_ref.data.binary_search_by_key(&ik, |(p, _)| *p).is_err() {
                        out.push(None);
                        plans.push(None);
                        continue;
                    }
                    let s: TaggedPtr<Node<V>> = tx.read(&n0_ref.next[0])?;
                    let n1 = s.as_ptr();
                    let merge = !n1.is_null()
                        // SAFETY: `n1` null-checked first; a validated
                        // non-null successor is guard-protected.
                        && n0_ref.count() + unsafe { &*n1 }.count() <= l.raw.params.node_size;
                    // SAFETY: `merge` implies `n1` is non-null (see above).
                    let n1_opt = if merge { Some(unsafe { &*n1 }) } else { None };
                    let b = build_remove(n0_ref, n1_opt, ik, merge)
                        // INVARIANT: the binary search above found `ik`.
                        .expect("key present per the search above");
                    let plan = RemovePlan {
                        w,
                        n0,
                        n1,
                        merge,
                        n_new: b.n_new,
                        old_value: b.old_value.clone(),
                        published: Cell::new(false),
                    };
                    let mut n0_next = [TaggedPtr::null(); MAX_LEVEL_CAP];
                    for i in 0..n0_ref.level {
                        n0_next[i] = tx.read(&n0_ref.next[i])?;
                    }
                    let mut n1_next = [TaggedPtr::null(); MAX_LEVEL_CAP];
                    if merge {
                        // SAFETY: `merge` implies non-null `n1`, guard-
                        // protected; `level` bounds the live `next` array.
                        for i in 0..unsafe { &*n1 }.level {
                            // SAFETY: i < n1.level indexes in-bounds TVars.
                            n1_next[i] = tx.read(unsafe { &(*n1).next[i] })?;
                        }
                    }
                    // SAFETY: plan nodes are unpublished (exclusive) and
                    // window nodes validated by this transaction.
                    unsafe { common::wire_remove_tx(&mut tx, &plan, &n0_next, &n1_next) }?;
                    out.push(Some(b.old_value));
                    plans.push(Some(plan));
                }
                Ok(out)
            })();
            match body {
                Ok(out) => {
                    if tx.commit().is_ok() {
                        for plan in plans.iter().flatten() {
                            plan.mark_published();
                            // SAFETY: the committed swing unlinked `n0`;
                            // the grace period covers in-flight readers.
                            // lint:allow(reclamation-discipline): the TM variant has no version
                            // bundles and no snapshot pins — every reader reaches nodes through
                            // the live transactional structure only, so the plain EBR grace
                            // period is the full safety argument.
                            unsafe { guard.defer_drop_box(plan.n0) };
                            if plan.merge {
                                // SAFETY: the merge swing unlinked `n1` too.
                                // lint:allow(reclamation-discipline): as above — TM has no
                                // snapshot readers, plain EBR suffices.
                                unsafe { guard.defer_drop_box(plan.n1) };
                            }
                        }
                        return out;
                    }
                }
                Err(_) => drop(tx),
            }
            drop(plans);
            backoff.snooze();
        }
    }

    fn check_batch(&self, lists: &[&Self], keys: &[u64]) {
        assert!(!lists.is_empty(), "batch must be non-empty");
        for k in keys {
            assert!(*k < u64::MAX, "key u64::MAX is reserved");
        }
        for (i, l) in lists.iter().enumerate() {
            assert!(
                Arc::ptr_eq(&l.domain, &self.domain),
                "batched lists must share one StmDomain"
            );
            for m in &lists[..i] {
                assert!(
                    !std::ptr::eq(*l as *const Self, *m as *const Self),
                    "a list may appear only once per batch"
                );
            }
        }
    }

    /// Transactional lookup (instrumented traversal).
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn lookup(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let ik = internal_key(key);
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<Option<V>> = (|| {
                // SAFETY: `_guard` pins the epoch for the whole attempt.
                let w = unsafe { Self::search_tx(&self.raw, &mut tx, ik) }?;
                // SAFETY: under guard; data immutable.
                let n = unsafe { &*w.target() };
                Ok(n.index_of(ik, &self.raw.params)
                    .map(|i| n.data[i].1.clone()))
            })();
            if let Ok(v) = body {
                if tx.commit().is_ok() {
                    return v;
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Transactional range query: instrumented search plus instrumented
    /// level-0 walk.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        let (ilo, ihi) = (internal_key(lo), internal_key(hi));
        let _guard = pin();
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Txn::begin(&self.domain);
            let body: TxResult<Vec<*mut Node<V>>> = (|| {
                // SAFETY: `_guard` pins the epoch for the whole attempt.
                let w = unsafe { Self::search_tx(&self.raw, &mut tx, ilo) }?;
                let mut nodes = Vec::new();
                let mut n = w.target();
                loop {
                    // SAFETY: validated transactional reads under guard.
                    let node = unsafe { &*n };
                    nodes.push(n);
                    if node.high >= ihi {
                        return Ok(nodes);
                    }
                    let s: TaggedPtr<Node<V>> = tx.read(&node.next[0])?;
                    n = s.as_ptr();
                }
            })();
            if let Ok(nodes) = body {
                if tx.commit().is_ok() {
                    // SAFETY: nodes captured by validated reads, still under
                    // `_guard`; `data` is immutable.
                    return unsafe { common::extract_pairs(&nodes, ilo, ihi) };
                }
            } else {
                drop(tx);
            }
            backoff.snooze();
        }
    }

    /// Approximate number of keys (naked walk; exact when quiescent).
    pub fn len(&self) -> usize {
        let _guard = pin();
        self.raw.len_unsynced()
    }

    /// Whether the list holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapListTm<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapListTm")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        }
    }

    #[test]
    fn roundtrip() {
        let l: LeapListTm<u64> = LeapListTm::new(small());
        assert_eq!(l.update(9, 90), None);
        assert_eq!(l.update(9, 91), Some(90));
        assert_eq!(l.lookup(9), Some(91));
        assert_eq!(l.remove(9), Some(91));
        assert_eq!(l.lookup(9), None);
    }

    #[test]
    fn many_keys_split_and_query() {
        let l: LeapListTm<u64> = LeapListTm::new(small());
        for k in (0..60u64).rev() {
            l.update(k, k);
        }
        assert_eq!(l.len(), 60);
        let r = l.range_query(10, 19);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], (10, 10));
        assert_eq!(r[9], (19, 19));
    }

    #[test]
    fn removes_trigger_merges() {
        let l: LeapListTm<u64> = LeapListTm::new(small());
        for k in 0..40u64 {
            l.update(k, k);
        }
        for k in 0..36u64 {
            assert_eq!(l.remove(k), Some(k));
        }
        assert_eq!(l.len(), 4);
        assert_eq!(
            l.range_query(0, 100),
            (36..40).map(|k| (k, k)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batch_updates_multiple_lists() {
        let lists = LeapListTm::<u64>::group(2, small());
        let refs: Vec<&_> = lists.iter().collect();
        LeapListTm::update_batch(&refs, &[5, 6], &[50, 60]);
        assert_eq!(lists[0].lookup(5), Some(50));
        assert_eq!(lists[1].lookup(6), Some(60));
        let old = LeapListTm::remove_batch(&refs, &[5, 777]);
        assert_eq!(old, vec![Some(50), None]);
    }
}
