//! The Leap-List "fat" node (paper Fig. 2) and the pure functions that
//! derive replacement nodes for updates, removes, splits and merges.
//!
//! A node owns up to `K` **immutable** key-value pairs covering the key
//! range `(pred.high, high]`. Mutation never edits a node in place: the
//! node is replaced wholesale by one (update / remove / merge) or two
//! (split) freshly built nodes, which is what makes range queries cheap —
//! a consistent set of node pointers *is* a consistent set of keys.

use crate::bundle::Bundle;
use crate::params::Params;
use crate::trie::Trie;
use leap_stm::{TPtr, TVar, TaggedPtr};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on tower heights (the paper's experiments use 10).
pub const MAX_LEVEL_CAP: usize = 32;

/// Internal keys are public keys shifted by one so that the head sentinel's
/// `high == 0` sits below every key and the tail sentinel's
/// `high == u64::MAX` (the paper's +inf) sits above.
#[inline]
pub(crate) fn internal_key(key: u64) -> u64 {
    debug_assert!(key < u64::MAX);
    key + 1
}

#[inline]
pub(crate) fn public_key(ik: u64) -> u64 {
    debug_assert!(ik > 0);
    ik - 1
}

/// A Leap-List node. All fields except `live` and `next` are immutable
/// after publication.
pub(crate) struct Node<V> {
    /// Upper bound (inclusive) of this node's internal-key range.
    pub high: u64,
    /// COP validity mark: false while the node is being replaced or once it
    /// has been replaced.
    pub live: TVar<bool>,
    /// Tower height; `next.len() == level`.
    pub level: usize,
    /// Forward pointers, one per level; the low bit is the transactionally
    /// written mark of the paper's protocol.
    pub next: Box<[TPtr<Node<V>>]>,
    /// Sorted, immutable internal-key/value pairs.
    pub data: Box<[(u64, V)]>,
    /// Immutable index: internal key -> position in `data`.
    pub trie: Trie,
    /// Commit timestamp that published this node; `u64::MAX` until the
    /// publishing commit's post-commit stamping (sentinels are seeded 0).
    pub created_ts: AtomicU64,
    /// Commit timestamp that unlinked this node; `u64::MAX` while live.
    pub retired_ts: AtomicU64,
    /// Timestamped version history of `next[0]` (see `bundle.rs`).
    pub bundle: Bundle<V>,
}

impl<V> Node<V> {
    /// Allocates an unpublished (non-live) node; returns a raw pointer
    /// owned by the caller until it is wired into the list.
    pub fn alloc(high: u64, level: usize, data: Vec<(u64, V)>) -> *mut Node<V> {
        debug_assert!((1..=MAX_LEVEL_CAP).contains(&level));
        debug_assert!(data.windows(2).all(|w| w[0].0 < w[1].0));
        let keys: Vec<u64> = data.iter().map(|(k, _)| *k).collect();
        Box::into_raw(Box::new(Node {
            high,
            live: TVar::new(false),
            level,
            next: (0..level).map(|_| TVar::new(TaggedPtr::null())).collect(),
            data: data.into_boxed_slice(),
            trie: Trie::build(&keys),
            created_ts: AtomicU64::new(u64::MAX),
            retired_ts: AtomicU64::new(u64::MAX),
            bundle: Bundle::new(),
        }))
    }

    /// Whether this node is on the snapshot chain at timestamp `ts`:
    /// published at-or-before `ts` and not yet retired at `ts`.
    pub fn visible_at(&self, ts: u64) -> bool {
        self.created_ts.load(Ordering::Acquire) <= ts
            && ts < self.retired_ts.load(Ordering::Acquire)
    }

    /// Number of key-value pairs stored.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// Index of internal key `ik` using the configured intra-node search.
    pub fn index_of(&self, ik: u64, params: &Params) -> Option<usize> {
        if params.use_trie {
            self.trie_index_of(ik)
        } else {
            self.data.binary_search_by_key(&ik, |(k, _)| *k).ok()
        }
    }

    /// Trie-based index lookup (always available, for the ablation).
    pub fn trie_index_of(&self, ik: u64) -> Option<usize> {
        // The trie stores positions in `data`; keys slice view is rebuilt
        // on the fly — data is `(key, value)` pairs, so probe through a
        // closure-free comparison path.
        self.trie.get_by(ik, |i| self.data[i].0, self.data.len())
    }
}

/// Frees an unpublished or unlinked node.
///
/// # Safety
///
/// `ptr` must come from [`Node::alloc`] and be unreachable by other threads
/// (never published, or unlinked and past its grace period).
pub(crate) unsafe fn free_node<V>(ptr: *mut Node<V>) {
    // SAFETY: contract forwarded from this fn's `# Safety` section — `ptr`
    // is a `Node::alloc` box no other thread can reach.
    // lint:allow(reclamation-discipline): this is the single dealloc
    // primitive; every *published* node reaches it only via the
    // Limbo/prune_bound path in bundle.rs (or EBR grace), and unpublished
    // plan nodes are caller-owned by the `# Safety` contract.
    drop(unsafe { Box::from_raw(ptr) });
}

/// Draws a tower height in `1..=max` (geometric, p = 1/2).
pub(crate) fn random_level<R: Rng + ?Sized>(max: usize, rng: &mut R) -> usize {
    let bits: u64 = rng.gen();
    ((bits.trailing_ones() as usize) + 1).min(max)
}

/// The data layout for an update's replacement node(s) (paper Fig. 8 /
/// `CreateNewNodes`).
pub(crate) struct UpdateBuild<V> {
    /// Lower (or only) replacement node.
    pub n0: *mut Node<V>,
    /// Upper replacement node if the update split.
    pub n1: Option<*mut Node<V>>,
    /// Previous value if `ik` was already present.
    pub old_value: Option<V>,
    /// Height the wiring must cover: `max(level(n0), level(n1))`.
    pub max_height: usize,
}

/// Builds the replacement node(s) for updating `ik -> value` in `n`.
///
/// Splits when the node already holds `params.node_size` pairs (paper
/// Fig. 8 line 82): the lower half receives a fresh random level and a high
/// bound equal to its largest key; the upper half keeps the old node's
/// level and high bound.
pub(crate) fn build_update<V: Clone, R: Rng + ?Sized>(
    n: &Node<V>,
    ik: u64,
    value: V,
    params: &Params,
    rng: &mut R,
) -> UpdateBuild<V> {
    debug_assert!(ik <= n.high);
    let mut data: Vec<(u64, V)> = n.data.to_vec();
    let old_value = match data.binary_search_by_key(&ik, |(k, _)| *k) {
        Ok(i) => Some(std::mem::replace(&mut data[i], (ik, value)).1),
        Err(i) => {
            data.insert(i, (ik, value));
            None
        }
    };
    if n.count() == params.node_size {
        // Split (at most one, only at this node — paper §1.2).
        let mid = data.len() / 2;
        let upper = data.split_off(mid);
        let lower = data;
        // INVARIANT: a split fires only at count == node_size, and
        // `Params::validate` rejects node_size < 2, so len >= 2 and the
        // lower half holds mid = len/2 >= 1 keys.
        let lower_high = lower.last().expect("split halves are non-empty").0;
        let l0 = random_level(params.max_level, rng);
        let l1 = n.level;
        let n0 = Node::alloc(lower_high, l0, lower);
        let n1 = Node::alloc(n.high, l1, upper);
        UpdateBuild {
            n0,
            n1: Some(n1),
            old_value,
            max_height: l0.max(l1),
        }
    } else {
        let n0 = Node::alloc(n.high, n.level, data);
        UpdateBuild {
            n0,
            n1: None,
            old_value,
            max_height: n.level,
        }
    }
}

/// The data layout for a remove's replacement node (paper Fig. 11 /
/// `RemoveAndMerge`).
pub(crate) struct RemoveBuild<V> {
    pub n_new: *mut Node<V>,
    pub old_value: V,
}

/// Builds the replacement for removing `ik` from `n0`, merging in `n1`'s
/// contents when `merge` (the combined population fits in one node).
///
/// Returns `None` if `ik` is not present in `n0` (the caller treats the
/// list as unchanged).
pub(crate) fn build_remove<V: Clone>(
    n0: &Node<V>,
    n1: Option<&Node<V>>,
    ik: u64,
    merge: bool,
) -> Option<RemoveBuild<V>> {
    let pos = n0.data.binary_search_by_key(&ik, |(k, _)| *k).ok()?;
    let mut data: Vec<(u64, V)> = Vec::with_capacity(
        n0.count() - 1
            + if merge {
                n1.map_or(0, |n| n.count())
            } else {
                0
            },
    );
    data.extend(n0.data.iter().filter(|(k, _)| *k != ik).cloned());
    let old_value = n0.data[pos].1.clone();
    let (high, level) = if merge {
        // INVARIANT: the plan layer sets `merge` only after locating (and
        // locking) the successor it passes as `n1` (plan.rs absorb path).
        let n1 = n1.expect("merge requires a successor");
        data.extend(n1.data.iter().cloned());
        (n1.high, n0.level.max(n1.level))
    } else {
        (n0.high, n0.level)
    };
    Some(RemoveBuild {
        n_new: Node::alloc(high, level, data),
        old_value,
    })
}

impl Trie {
    /// Variant of [`Trie::get`] that reads keys through an accessor, used
    /// by [`Node::trie_index_of`] where keys live interleaved with values.
    pub(crate) fn get_by(
        &self,
        key: u64,
        key_at: impl Fn(usize) -> u64,
        len: usize,
    ) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let idx = self.descend(key)?;
        (key_at(idx) == key).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn mk_node(keys: &[u64], level: usize, high: u64) -> *mut Node<u64> {
        let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 10)).collect();
        Node::alloc(high, level, data)
    }

    /// Borrow a test-owned node. Centralizes the one safety argument every
    /// test here relies on instead of repeating it per deref.
    fn node_ref<'a>(p: *mut Node<u64>) -> &'a Node<u64> {
        // SAFETY: nodes in this module come from `Node::alloc` and are never
        // wired into a list, so the pointer is exclusively owned by the test
        // thread and stays valid until its explicit `free` below.
        unsafe { &*p }
    }

    fn free(p: *mut Node<u64>) {
        // SAFETY: same exclusive-ownership argument as `node_ref`; every
        // test frees each pointer exactly once, at the end, after its last
        // borrow died.
        unsafe { free_node(p) }
    }

    #[test]
    fn alloc_and_index() {
        let p = Params::default();
        let n = mk_node(&[5, 9, 12], 3, 100);
        let node = node_ref(n);
        assert_eq!(node.count(), 3);
        assert_eq!(node.index_of(9, &p), Some(1));
        assert_eq!(node.index_of(10, &p), None);
        assert_eq!(node.trie_index_of(12), Some(2));
        assert!(!node.live.naked_load());
        free(n);
    }

    #[test]
    fn build_update_inserts_and_replaces() {
        let p = Params {
            node_size: 8,
            ..Params::default()
        };
        let mut rng = rand::thread_rng();
        let n = mk_node(&[2, 4, 6], 2, 100);
        // Insert new key.
        let b = build_update(node_ref(n), 5, 50, &p, &mut rng);
        assert!(b.n1.is_none());
        assert_eq!(b.old_value, None);
        let n0 = node_ref(b.n0);
        assert_eq!(
            n0.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2, 4, 5, 6]
        );
        assert_eq!(n0.high, 100);
        assert_eq!(n0.level, 2);
        // Replace existing key.
        let b2 = build_update(n0, 4, 999, &p, &mut rng);
        assert_eq!(b2.old_value, Some(40));
        let n02 = node_ref(b2.n0);
        assert_eq!(n02.data[1], (4, 999));
        free(n);
        free(b.n0);
        free(b2.n0);
    }

    #[test]
    fn build_update_splits_full_node() {
        let p = Params {
            node_size: 4,
            max_level: 6,
            ..Params::default()
        };
        let mut rng = rand::thread_rng();
        let n = mk_node(&[10, 20, 30, 40], 3, 1000);
        let b = build_update(node_ref(n), 25, 1, &p, &mut rng);
        let n0 = node_ref(b.n0);
        let n1 = node_ref(b.n1.expect("full node must split"));
        // 5 keys split 2/3.
        assert_eq!(
            n0.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 20]
        );
        assert_eq!(
            n1.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![25, 30, 40]
        );
        assert_eq!(n0.high, 20, "lower high = its largest key");
        assert_eq!(n1.high, 1000, "upper keeps the old high");
        assert_eq!(n1.level, 3, "upper keeps the old level");
        assert_eq!(b.max_height, n0.level.max(3));
        free(n);
        free(b.n0);
        free(b.n1.unwrap());
    }

    #[test]
    fn build_remove_without_merge() {
        let n = mk_node(&[1, 2, 3], 2, 50);
        let b = build_remove(node_ref(n), None, 2, false).expect("present");
        assert_eq!(b.old_value, 20);
        let nn = node_ref(b.n_new);
        assert_eq!(
            nn.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(nn.high, 50);
        assert_eq!(nn.level, 2);
        free(n);
        free(b.n_new);
    }

    #[test]
    fn build_remove_merges_with_successor() {
        let a = mk_node(&[1, 2], 2, 10);
        let b_ = mk_node(&[15, 18], 4, 20);
        let r = build_remove(node_ref(a), Some(node_ref(b_)), 1, true).unwrap();
        let nn = node_ref(r.n_new);
        assert_eq!(
            nn.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2, 15, 18]
        );
        assert_eq!(nn.high, 20, "merged node takes the successor's high");
        assert_eq!(nn.level, 4, "merged node takes the max level");
        free(a);
        free(b_);
        free(r.n_new);
    }

    #[test]
    fn build_remove_missing_key_is_none() {
        let n = mk_node(&[1, 2, 3], 2, 50);
        assert!(build_remove(node_ref(n), None, 7, false).is_none());
        free(n);
    }

    #[test]
    fn build_remove_last_key_leaves_empty_node() {
        let n = mk_node(&[4], 1, 50);
        let b = build_remove(node_ref(n), None, 4, false).unwrap();
        let nn = node_ref(b.n_new);
        assert_eq!(
            nn.count(),
            0,
            "empty nodes are legal (like the initial tail)"
        );
        free(n);
        free(b.n_new);
    }

    #[test]
    fn internal_key_mapping() {
        assert_eq!(internal_key(0), 1);
        assert_eq!(public_key(internal_key(12345)), 12345);
        assert_eq!(internal_key(u64::MAX - 1), u64::MAX);
    }

    #[test]
    fn random_level_bounds() {
        let mut rng = rand::thread_rng();
        for _ in 0..5_000 {
            let l = random_level(10, &mut rng);
            assert!((1..=10).contains(&l));
        }
    }
}
