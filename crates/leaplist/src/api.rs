//! A uniform object-safe interface over the four synchronization variants,
//! used by the benchmark harness and examples to swap algorithms.

use crate::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm};

/// One component of a mixed multi-list batch
/// ([`LeapListLt::apply_batch`]).
///
/// # Example
///
/// ```
/// use leaplist::{BatchOp, LeapListLt, Params};
/// let lists = LeapListLt::<u64>::group(2, Params::default());
/// let refs: Vec<&_> = lists.iter().collect();
/// lists[0].update(5, 50);
/// // Atomically: remove key 5 from list 0 AND insert key 6 into list 1.
/// let old = LeapListLt::apply_batch(
///     &refs,
///     &[BatchOp::Remove(5), BatchOp::Update(6, 60)],
/// );
/// assert_eq!(old, vec![Some(50), None]);
/// ```
#[derive(Debug, Clone)]
pub enum BatchOp<V> {
    /// Insert or update `key -> value` in the corresponding list.
    Update(u64, V),
    /// Remove `key` from the corresponding list.
    Remove(u64),
}

/// The abstract dictionary-with-range-queries of the paper (§1): `Update`,
/// `Remove`, `Lookup` and `Range-Query`, all linearizable.
///
/// # Example
///
/// ```
/// use leaplist::{LeapListLt, Params, RangeMap};
/// fn fill(map: &dyn RangeMap<u64>) {
///     map.update(1, 10);
///     map.update(2, 20);
/// }
/// let l: LeapListLt<u64> = LeapListLt::new(Params::default());
/// fill(&l);
/// assert_eq!(l.range_query(0, 9), vec![(1, 10), (2, 20)]);
/// ```
pub trait RangeMap<V>: Send + Sync {
    /// Inserts or updates `key -> value`; returns the previous value.
    fn update(&self, key: u64, value: V) -> Option<V>;
    /// Removes `key`; returns its value if present.
    fn remove(&self, key: u64) -> Option<V>;
    /// Returns the value bound to `key`.
    fn lookup(&self, key: u64) -> Option<V>;
    /// Returns all pairs with keys in `[lo, hi]`, from one consistent
    /// snapshot, in ascending key order.
    fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)>;
    /// Number of keys (may be approximate under concurrency).
    fn len(&self) -> usize;
    /// Whether the map holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

macro_rules! impl_range_map {
    ($ty:ident) => {
        impl<V: Clone + Send + Sync + 'static> RangeMap<V> for $ty<V> {
            fn update(&self, key: u64, value: V) -> Option<V> {
                $ty::update(self, key, value)
            }
            fn remove(&self, key: u64) -> Option<V> {
                $ty::remove(self, key)
            }
            fn lookup(&self, key: u64) -> Option<V> {
                $ty::lookup(self, key)
            }
            fn range_query(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
                $ty::range_query(self, lo, hi)
            }
            fn len(&self) -> usize {
                $ty::len(self)
            }
        }
    };
}

impl_range_map!(LeapListLt);
impl_range_map!(LeapListCop);
impl_range_map!(LeapListTm);
impl_range_map!(LeapListRwlock);

macro_rules! impl_collect {
    ($ty:ident) => {
        impl<V: Clone + Send + Sync + 'static> FromIterator<(u64, V)> for $ty<V> {
            /// Builds a list with default [`Params`](crate::Params) from
            /// `(key, value)` pairs (later duplicates win, as with
            /// `update`).
            fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> Self {
                let list = $ty::new(crate::Params::default());
                for (k, v) in iter {
                    list.update(k, v);
                }
                list
            }
        }

        impl<V: Clone + Send + Sync + 'static> Extend<(u64, V)> for $ty<V> {
            fn extend<I: IntoIterator<Item = (u64, V)>>(&mut self, iter: I) {
                for (k, v) in iter {
                    self.update(k, v);
                }
            }
        }
    };
}

impl_collect!(LeapListLt);
impl_collect!(LeapListCop);
impl_collect!(LeapListTm);
impl_collect!(LeapListRwlock);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn exercise(map: &dyn RangeMap<u64>) {
        assert!(map.is_empty());
        assert_eq!(map.update(4, 40), None);
        assert_eq!(map.update(2, 20), None);
        assert_eq!(map.lookup(4), Some(40));
        assert_eq!(map.range_query(0, 10), vec![(2, 20), (4, 40)]);
        assert_eq!(map.remove(2), Some(20));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn all_variants_behind_one_interface() {
        let p = Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        };
        exercise(&LeapListLt::<u64>::new(p.clone()));
        exercise(&LeapListCop::<u64>::new(p.clone()));
        exercise(&LeapListTm::<u64>::new(p.clone()));
        exercise(&LeapListRwlock::<u64>::new(p));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut l: LeapListLt<u64> = (0..10u64).map(|k| (k, k * 2)).collect();
        assert_eq!(l.len(), 10);
        assert_eq!(l.lookup(4), Some(8));
        l.extend([(20, 1), (21, 2)]);
        assert_eq!(l.len(), 12);
        // Later duplicates win.
        let l2: LeapListRwlock<u64> = [(1, 1), (1, 9)].into_iter().collect();
        assert_eq!(l2.lookup(1), Some(9));
    }

    #[test]
    fn extremes_and_counts() {
        let l: LeapListLt<u64> = LeapListLt::new(Params {
            node_size: 3,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        });
        assert_eq!(l.first_key_value(), None);
        assert_eq!(l.last_key_value(), None);
        assert_eq!(l.count_range(0, 100), 0);
        for k in [5u64, 50, 20, 80, 35] {
            l.update(k, k + 1);
        }
        assert_eq!(l.first_key_value(), Some((5, 6)));
        assert_eq!(l.last_key_value(), Some((80, 81)));
        assert_eq!(l.count_range(10, 60), 3);
        assert_eq!(l.count_range(81, 100), 0);
        assert!(l.contains_key(35));
        assert!(!l.contains_key(36));
        // Remove the extremes; the answers must follow.
        l.remove(5);
        l.remove(80);
        assert_eq!(l.first_key_value(), Some((20, 21)));
        assert_eq!(l.last_key_value(), Some((50, 51)));
        // Empty the list entirely: the trailing-empty-node fallback path.
        for k in [20u64, 35, 50] {
            l.remove(k);
        }
        assert_eq!(l.last_key_value(), None);
        assert_eq!(l.first_key_value(), None);
    }
}
