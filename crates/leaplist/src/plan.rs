//! The *setup* phase of update and remove (paper Figs. 8 and 11): an
//! uninstrumented search plus construction of the replacement node(s).
//! Plans own their freshly built nodes until they are published; dropping
//! an unpublished plan (an aborted attempt) frees them.

use crate::node::{build_remove, build_update, free_node, Node};
use crate::raw::{RawLeapList, SearchWindow};
use std::cell::Cell;

/// Everything an update needs to validate, lock and wire (one list).
pub(crate) struct UpdatePlan<V> {
    pub w: SearchWindow<V>,
    /// The node being replaced (`na[0]`).
    pub n: *mut Node<V>,
    /// Lower (or only) replacement.
    pub n0: *mut Node<V>,
    /// Upper replacement when splitting, else null.
    pub n1: *mut Node<V>,
    pub split: bool,
    /// Height the predecessor wiring covers.
    pub max_height: usize,
    pub old_value: Option<V>,
    pub(crate) published: Cell<bool>,
}

impl<V> UpdatePlan<V> {
    /// Marks the new nodes as reachable so the plan's drop no longer owns
    /// them.
    pub fn mark_published(&self) {
        self.published.set(true);
    }
}

impl<V> Drop for UpdatePlan<V> {
    fn drop(&mut self) {
        if !self.published.get() {
            // SAFETY: unpublished nodes are exclusively ours.
            unsafe {
                free_node(self.n0);
                if !self.n1.is_null() {
                    free_node(self.n1);
                }
            }
        }
    }
}

/// Builds an update plan: search for the target node, then derive the
/// replacement node(s) (split when full).
///
/// # Safety
///
/// Caller holds an epoch guard and keeps it for as long as the plan's raw
/// pointers are used.
pub(crate) unsafe fn plan_update<V: Clone>(
    raw: &RawLeapList<V>,
    ik: u64,
    value: V,
) -> UpdatePlan<V> {
    let w = unsafe { raw.search_predecessors(ik) };
    let n = w.target();
    // SAFETY: `n` observed live by the search; guard keeps it allocated.
    let b = build_update(
        unsafe { &*n },
        ik,
        value,
        &raw.params,
        &mut rand::thread_rng(),
    );
    UpdatePlan {
        w,
        n,
        n0: b.n0,
        n1: b.n1.unwrap_or(std::ptr::null_mut()),
        split: b.n1.is_some(),
        max_height: b.max_height,
        old_value: b.old_value,
        published: Cell::new(false),
    }
}

/// Everything a remove needs to validate, lock and wire (one list).
pub(crate) struct RemovePlan<V> {
    pub w: SearchWindow<V>,
    /// The node holding the key.
    pub n0: *mut Node<V>,
    /// Its level-0 successor (null when `n0` is the tail).
    pub n1: *mut Node<V>,
    pub merge: bool,
    /// Replacement node.
    pub n_new: *mut Node<V>,
    pub old_value: V,
    pub(crate) published: Cell<bool>,
}

impl<V> RemovePlan<V> {
    pub fn mark_published(&self) {
        self.published.set(true);
    }
}

impl<V> Drop for RemovePlan<V> {
    fn drop(&mut self) {
        if !self.published.get() {
            // SAFETY: unpublished node is exclusively ours.
            unsafe { free_node(self.n_new) };
        }
    }
}

/// Builds a remove plan (paper Fig. 11), retrying internally while the
/// neighbourhood is mid-replacement. Returns `None` when the key is absent
/// (`changed[j] = false` in the paper — the list is left untouched).
///
/// # Safety
///
/// Same contract as [`plan_update`].
pub(crate) unsafe fn plan_remove<V: Clone>(raw: &RawLeapList<V>, ik: u64) -> Option<RemovePlan<V>> {
    let mut retries = 0u32;
    loop {
        retries += 1;
        if retries > 16 {
            // Some releaser is mid-flight; let it run (see
            // `search_predecessors`).
            std::thread::yield_now();
        }
        let w = unsafe { raw.search_predecessors(ik) };
        let n0 = w.target();
        // SAFETY: observed live; guard held.
        let n0_ref = unsafe { &*n0 };
        if n0_ref.data.binary_search_by_key(&ik, |(k, _)| *k).is_err() {
            return None;
        }
        // Read the successor; retry while a committed update is mid-release
        // on it (paper lines 159-162).
        let s = n0_ref.next[0].naked_load();
        if s.is_marked() {
            std::hint::spin_loop();
            continue;
        }
        let n1 = s.as_ptr();
        let merge = if n1.is_null() {
            false
        } else {
            // SAFETY: unmarked committed pointer under guard.
            n0_ref.count() + unsafe { &*n1 }.count() <= raw.params.node_size
        };
        // Liveness pre-checks (paper lines 169-170); the LT transaction
        // re-validates, this just avoids building nodes from dead data.
        if !n0_ref.live.naked_load() {
            continue;
        }
        if merge && !unsafe { &*n1 }.live.naked_load() {
            continue;
        }
        let n1_opt = if merge {
            // SAFETY: checked non-null above when merge is true.
            Some(unsafe { &*n1 })
        } else {
            None
        };
        let b = build_remove(n0_ref, n1_opt, ik, merge)?;
        return Some(RemovePlan {
            w,
            n0,
            n1,
            merge,
            n_new: b.n_new,
            old_value: b.old_value,
            published: Cell::new(false),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn raw() -> RawLeapList<u64> {
        RawLeapList::new(Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        })
    }

    #[test]
    fn plan_update_on_empty_list_targets_tail() {
        let l = raw();
        let p = unsafe { plan_update(&l, 100, 7u64) };
        assert!(!p.split);
        assert_eq!(p.old_value, None);
        let n0 = unsafe { &*p.n0 };
        assert_eq!(n0.high, u64::MAX, "replacement of the tail keeps +inf");
        assert_eq!(n0.data.to_vec(), vec![(100, 7)]);
        // Dropping the unpublished plan must free n0 (checked by miri/asan
        // and the leak-count integration tests).
    }

    #[test]
    fn plan_remove_absent_key_is_none() {
        let l = raw();
        assert!(unsafe { plan_remove(&l, 55) }.is_none());
    }

    #[test]
    fn unpublished_plans_free_their_nodes() {
        // Drop-counting value type: every clone must be dropped again.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        #[derive(Clone)]
        struct D(#[allow(dead_code)] Arc<()>, Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let l: RawLeapList<D> = RawLeapList::new(Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        });
        {
            let p = unsafe { plan_update(&l, 9, D(Arc::new(()), drops.clone())) };
            drop(p);
        }
        // The original value plus any clones inside the discarded node.
        assert!(drops.load(Ordering::SeqCst) >= 1);
    }
}
