//! The *setup* phase of update and remove (paper Figs. 8 and 11): an
//! uninstrumented search plus construction of the replacement node(s).
//! Plans own their freshly built nodes until they are published; dropping
//! an unpublished plan (an aborted attempt) frees them.
//!
//! # Multi-op plans: the chain rebuild
//!
//! The paper's plans are one-op-per-list; [`plan_multi`] generalizes them
//! to **k operations against one list, committed in a single locking
//! transaction**. The algorithm:
//!
//! 1. **Locate** — sort the batch's keys and run one uninstrumented
//!    predecessor search per distinct key, grouping ops by the node whose
//!    range contains them ("affected" nodes).
//! 2. **Segment** — affected nodes that are adjacent on the level-0 chain
//!    form one *segment*; each segment keeps the search window of its
//!    smallest key. Segments are the unit of replacement.
//! 3. **Interference substitution** — same-commit segments can interfere:
//!    a tall dying node of one segment may be the level-i predecessor of a
//!    later segment, and two segments may share one *live* predecessor
//!    slot at a level (when the earlier chain grows taller than its old
//!    run). Wiring them independently would publish pointers into
//!    just-retired nodes, or let the later swing orphan the earlier chain.
//!    Instead the later segment's wiring *substitutes*: its predecessor
//!    swing at that level targets the earlier segment's replacement chain
//!    (the last new node taller than the level), which the single wiring
//!    thread has already wired by the time the later segment swings
//!    (segments wire in key order). The transaction still validates and
//!    marks the *old* window pointers, in two passes (validate everything,
//!    then mark everything) so a shared window TVar is never read after
//!    another segment marked it.
//! 4. **Rebuild** — per segment, concatenate the old nodes' immutable data,
//!    apply the segment's ops *in batch input order* (duplicate keys keep
//!    sequential semantics), and re-chunk the result into a fresh chain of
//!    `ceil(total / K)` balanced nodes: every node but the last takes a
//!    fresh random level and a high bound equal to its largest key; the
//!    last keeps the old segment's high bound and its maximum level, so
//!    chains covering the tail sentinel preserve full-height termination.
//!    This is the general form of the paper's split (1 node -> 2) and
//!    merge (2 nodes -> 1); a segment whose ops are all absent-key removes
//!    is dropped, leaving the list untouched.
//!
//! All of the above runs *outside* any transaction — the paper's central
//! lesson. The transaction (`validate_segment` / `mark_segment` in
//! `variants::common`) only re-validates each segment's window, marks the
//! frozen pointers and kills the dying nodes; the pointer surgery
//! (`wire::wire_chain` + `wire::publish_segment`) runs after commit as
//! plain atomic stores.

use crate::node::{build_remove, build_update, free_node, random_level, Node};
use crate::raw::{RawLeapList, SearchWindow};
use std::cell::Cell;

/// Everything an update needs to validate, lock and wire (one list).
pub(crate) struct UpdatePlan<V> {
    pub w: SearchWindow<V>,
    /// The node being replaced (`na[0]`).
    pub n: *mut Node<V>,
    /// Lower (or only) replacement.
    pub n0: *mut Node<V>,
    /// Upper replacement when splitting, else null.
    pub n1: *mut Node<V>,
    pub split: bool,
    /// Height the predecessor wiring covers.
    pub max_height: usize,
    pub old_value: Option<V>,
    pub(crate) published: Cell<bool>,
}

impl<V> UpdatePlan<V> {
    /// Marks the new nodes as reachable so the plan's drop no longer owns
    /// them.
    pub fn mark_published(&self) {
        self.published.set(true);
    }
}

impl<V> Drop for UpdatePlan<V> {
    fn drop(&mut self) {
        if !self.published.get() {
            // SAFETY: unpublished nodes are exclusively ours.
            unsafe {
                free_node(self.n0);
                if !self.n1.is_null() {
                    free_node(self.n1);
                }
            }
        }
    }
}

/// Builds an update plan: search for the target node, then derive the
/// replacement node(s) (split when full).
///
/// # Safety
///
/// Caller holds an epoch guard and keeps it for as long as the plan's raw
/// pointers are used.
pub(crate) unsafe fn plan_update<V: Clone>(
    raw: &RawLeapList<V>,
    ik: u64,
    value: V,
) -> UpdatePlan<V> {
    // SAFETY: caller holds the epoch guard (this fn's `# Safety` contract).
    let w = unsafe { raw.search_predecessors(ik) };
    let n = w.target();
    let b = build_update(
        // SAFETY: `n` observed live by the search; guard keeps it allocated.
        unsafe { &*n },
        ik,
        value,
        &raw.params,
        &mut rand::thread_rng(),
    );
    UpdatePlan {
        w,
        n,
        n0: b.n0,
        n1: b.n1.unwrap_or(std::ptr::null_mut()),
        split: b.n1.is_some(),
        max_height: b.max_height,
        old_value: b.old_value,
        published: Cell::new(false),
    }
}

/// Everything a remove needs to validate, lock and wire (one list).
pub(crate) struct RemovePlan<V> {
    pub w: SearchWindow<V>,
    /// The node holding the key.
    pub n0: *mut Node<V>,
    /// Its level-0 successor (null when `n0` is the tail).
    pub n1: *mut Node<V>,
    pub merge: bool,
    /// Replacement node.
    pub n_new: *mut Node<V>,
    pub old_value: V,
    pub(crate) published: Cell<bool>,
}

impl<V> RemovePlan<V> {
    pub fn mark_published(&self) {
        self.published.set(true);
    }
}

impl<V> Drop for RemovePlan<V> {
    fn drop(&mut self) {
        if !self.published.get() {
            // SAFETY: unpublished node is exclusively ours.
            unsafe { free_node(self.n_new) };
        }
    }
}

/// Builds a remove plan (paper Fig. 11), retrying internally while the
/// neighbourhood is mid-replacement. Returns `None` when the key is absent
/// (`changed[j] = false` in the paper — the list is left untouched).
///
/// # Safety
///
/// Same contract as [`plan_update`].
pub(crate) unsafe fn plan_remove<V: Clone>(raw: &RawLeapList<V>, ik: u64) -> Option<RemovePlan<V>> {
    let mut retries = 0u32;
    loop {
        retries += 1;
        if retries > 16 {
            // Some releaser is mid-flight; let it run (see
            // `search_predecessors`).
            std::thread::yield_now();
        }
        // SAFETY: caller holds the epoch guard (this fn's `# Safety`
        // contract).
        let w = unsafe { raw.search_predecessors(ik) };
        let n0 = w.target();
        // SAFETY: observed live; guard held.
        let n0_ref = unsafe { &*n0 };
        if n0_ref.data.binary_search_by_key(&ik, |(k, _)| *k).is_err() {
            return None;
        }
        // Read the successor; retry while a committed update is mid-release
        // on it (paper lines 159-162).
        let s = n0_ref.next[0].naked_load();
        if s.is_marked() {
            std::hint::spin_loop();
            continue;
        }
        let n1 = s.as_ptr();
        let merge = if n1.is_null() {
            false
        } else {
            // SAFETY: unmarked committed pointer under guard.
            n0_ref.count() + unsafe { &*n1 }.count() <= raw.params.node_size
        };
        // Liveness pre-checks (paper lines 169-170); the LT transaction
        // re-validates, this just avoids building nodes from dead data.
        if !n0_ref.live.naked_load() {
            continue;
        }
        // SAFETY: `n1` is the unmarked committed successor read above,
        // non-null when `merge`; the guard keeps it allocated.
        if merge && !unsafe { &*n1 }.live.naked_load() {
            continue;
        }
        let n1_opt = if merge {
            // SAFETY: checked non-null above when merge is true.
            Some(unsafe { &*n1 })
        } else {
            None
        };
        let b = build_remove(n0_ref, n1_opt, ik, merge)?;
        return Some(RemovePlan {
            w,
            n0,
            n1,
            merge,
            n_new: b.n_new,
            old_value: b.old_value,
            published: Cell::new(false),
        });
    }
}

/// One component of a multi-op batch against a single list, in internal
/// key space. Values are borrowed: they are cloned into replacement nodes
/// once per planning attempt, exactly like the single-op plans.
pub(crate) enum ListOp<'a, V> {
    /// Insert or update `ik -> value`.
    Put(u64, &'a V),
    /// Remove `ik`.
    Del(u64),
}

impl<V> ListOp<'_, V> {
    fn ik(&self) -> u64 {
        match self {
            ListOp::Put(ik, _) => *ik,
            ListOp::Del(ik) => *ik,
        }
    }
}

/// One contiguous run of nodes being replaced by a freshly built chain.
pub(crate) struct ChainSegment<V> {
    /// Window of the segment's smallest op key; `w.na[0] == old[0]`.
    pub w: SearchWindow<V>,
    /// The adjacent nodes being replaced, in chain order (non-empty).
    pub old: Vec<*mut Node<V>>,
    /// The replacement chain, in key order (non-empty).
    pub new: Vec<*mut Node<V>>,
    /// Maximum tower height among `old`.
    pub old_max: usize,
    /// Maximum tower height among `new` (`>= old_max` by construction:
    /// the last chain node keeps `old_max`), which is the height the
    /// predecessor wiring covers.
    pub wire_height: usize,
    /// Wiring target per level `i < wire_height`: normally `w.pa[i]`, but
    /// substituted with an **earlier segment's replacement node** when
    /// `w.pa[i]` (or that segment's exit into this one) is a node dying in
    /// the same commit. Validation and marking always use the old window
    /// (`w.pa`); only the post-commit swing uses `pa_wire`.
    pub pa_wire: Vec<*mut Node<V>>,
}

/// Everything a k-op batch against one list needs to validate, lock and
/// wire: the segments to replace plus the per-op previous values computed
/// during the rebuild.
pub(crate) struct MultiUpdatePlan<V> {
    /// Segments in key order; empty when every op was an absent-key remove.
    pub segments: Vec<ChainSegment<V>>,
    /// Previous value per op, in batch input order.
    pub results: Vec<Option<V>>,
    published: Cell<bool>,
}

impl<V> MultiUpdatePlan<V> {
    /// Marks every segment's new chain as reachable so the plan's drop no
    /// longer owns the nodes.
    pub fn mark_published(&self) {
        self.published.set(true);
    }
}

impl<V> Drop for MultiUpdatePlan<V> {
    fn drop(&mut self) {
        if !self.published.get() {
            for seg in &self.segments {
                for &c in &seg.new {
                    // SAFETY: unpublished nodes are exclusively ours.
                    unsafe { free_node(c) };
                }
            }
        }
    }
}

/// Lean single-op plan: wraps the paper-shaped [`plan_update`] /
/// [`plan_remove`] builders (split and remove-and-merge included) into a
/// one-segment [`MultiUpdatePlan`], so the hottest case — one op against
/// one list — pays exactly the original setup cost, while still
/// committing through the same segment validation/marking/wiring as any
/// k-op batch.
///
/// # Safety
///
/// Same contract as [`plan_multi`].
unsafe fn plan_single<V: Clone>(raw: &RawLeapList<V>, op: &ListOp<'_, V>) -> MultiUpdatePlan<V> {
    match op {
        ListOp::Put(ik, v) => {
            // SAFETY: forwards this fn's own guard contract.
            let p = unsafe { plan_update(raw, *ik, (*v).clone()) };
            // The segment takes ownership of the freshly built nodes.
            p.mark_published();
            // SAFETY: guard-protected plan pointers; immutable fields.
            let old_max = unsafe { &*p.n }.level;
            let seg = ChainSegment {
                w: SearchWindow {
                    pa: p.w.pa,
                    na: p.w.na,
                },
                old: vec![p.n],
                new: if p.split {
                    vec![p.n0, p.n1]
                } else {
                    vec![p.n0]
                },
                old_max,
                wire_height: p.max_height,
                pa_wire: p.w.pa[..p.max_height].to_vec(),
            };
            MultiUpdatePlan {
                segments: vec![seg],
                results: vec![p.old_value.clone()],
                published: Cell::new(false),
            }
        }
        // SAFETY: forwards this fn's own guard contract.
        ListOp::Del(ik) => match unsafe { plan_remove(raw, *ik) } {
            None => MultiUpdatePlan {
                segments: Vec::new(),
                results: vec![None],
                published: Cell::new(false),
            },
            Some(p) => {
                p.mark_published();
                // SAFETY: guard-protected plan pointers; immutable fields.
                let wire_height = unsafe { &*p.n_new }.level;
                let seg = ChainSegment {
                    w: SearchWindow {
                        pa: p.w.pa,
                        na: p.w.na,
                    },
                    old: if p.merge {
                        vec![p.n0, p.n1]
                    } else {
                        vec![p.n0]
                    },
                    new: vec![p.n_new],
                    // `n_new` keeps the tallest dying tower in both the
                    // merge and plain cases.
                    old_max: wire_height,
                    wire_height,
                    pa_wire: p.w.pa[..wire_height].to_vec(),
                };
                MultiUpdatePlan {
                    segments: vec![seg],
                    results: vec![Some(p.old_value.clone())],
                    published: Cell::new(false),
                }
            }
        },
    }
}

/// The last replacement-chain node taller than level `i` — the node that
/// owns the segment's level-`i` exit after wiring, and therefore the
/// substitution target for a later segment swinging at that level.
fn last_new_above<V>(seg: &ChainSegment<V>, i: usize) -> *mut Node<V> {
    let taller = seg
        .new
        .iter()
        .rev()
        // SAFETY: deref of a plan-owned unpublished node; `level` is
        // immutable after alloc.
        .find(|&&c| unsafe { &*c }.level > i);
    // INVARIANT: callers pass i < wire_height == max(new levels), so a
    // strictly taller chain node always exists.
    *taller.expect("a taller chain node exists below wire_height")
}

/// An affected-node run still under construction.
struct SegDraft<V> {
    nodes: Vec<*mut Node<V>>,
    w: SearchWindow<V>,
    /// Planned population after this segment's ops apply.
    count: usize,
    /// Planned replacement-chain levels (last entry = the old chain's
    /// maximum level); `max(levels)` is the wiring height the
    /// interference check must respect.
    levels: Vec<usize>,
}

impl<V> SegDraft<V> {
    fn wire_height(&self) -> usize {
        // INVARIANT: `plan_shape` always pushes at least one level before
        // this is read.
        *self.levels.iter().max().expect("chains are non-empty")
    }
}

/// Draws the replacement chain's shape for a segment holding `count`
/// pairs: `ceil(count / K)` nodes, every one but the last at a fresh
/// random level, the last keeping the old chain's maximum level. Drawing
/// the levels *before* the interference check pins the wiring height, so
/// the check can be scoped to levels the wiring will actually touch.
fn plan_shape<V, R: rand::Rng + ?Sized>(
    nodes: &[*mut Node<V>],
    count: usize,
    node_size: usize,
    max_level: usize,
    rng: &mut R,
) -> Vec<usize> {
    let old_max = nodes
        .iter()
        // SAFETY: nodes are guard-protected (plan_multi contract) and
        // `level` is immutable after alloc.
        .map(|&o| unsafe { &*o }.level)
        .max()
        // INVARIANT: segment drafts are created around one node and only
        // ever grow.
        .expect("segments are non-empty");
    let r = if count <= node_size {
        1
    } else {
        count.div_ceil(node_size)
    };
    let mut levels = Vec::with_capacity(r);
    for _ in 0..r - 1 {
        levels.push(random_level(max_level, rng));
    }
    levels.push(old_max);
    levels
}

/// Builds a multi-op plan for one list: locate, segment, merge
/// interference, rebuild (see the module docs). Retries internally while
/// the observed neighbourhood is mid-replacement; the returned plan may
/// still be stale, in which case the LT validation aborts and the caller
/// re-plans.
///
/// # Safety
///
/// Caller holds an epoch guard and keeps it for as long as the plan's raw
/// pointers are used.
pub(crate) unsafe fn plan_multi<V: Clone>(
    raw: &RawLeapList<V>,
    ops: &[ListOp<'_, V>],
) -> MultiUpdatePlan<V> {
    // One op per list is the hottest case by far (every `update`/`remove`
    // and most Batcher traffic): skip the grouping machinery entirely.
    if let [op] = ops {
        // SAFETY: forwards this fn's own guard contract.
        return unsafe { plan_single(raw, op) };
    }
    let mut retries = 0u32;
    'retry: loop {
        retries += 1;
        if retries > 16 {
            // Some releaser is mid-flight; let it run.
            std::thread::yield_now();
        }
        // 1. Locate the target node of every distinct key, ascending, so
        //    affected nodes come out in chain order (torn observations are
        //    caught by the transactional validation).
        let mut keys: Vec<u64> = ops.iter().map(ListOp::ik).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut key_node: Vec<(u64, *mut Node<V>)> = Vec::with_capacity(keys.len());
        let mut segs: Vec<SegDraft<V>> = Vec::new();
        for &ik in &keys {
            // SAFETY: caller holds the epoch guard (this fn's `# Safety`
            // contract).
            let w = unsafe { raw.search_predecessors(ik) };
            let n = w.target();
            // SAFETY: observed live by the search; guard keeps it allocated.
            if !unsafe { &*n }.live.naked_load() {
                continue 'retry;
            }
            key_node.push((ik, n));
            // 2. Segment: extend the last run when this key lands in the
            //    same node or in its immediate level-0 successor.
            if let Some(s) = segs.last_mut() {
                // INVARIANT: drafts are pushed with one node and never
                // emptied.
                let last = *s.nodes.last().expect("runs are non-empty");
                if last == n {
                    continue;
                }
                // SAFETY: `last` was observed live under the guard above.
                let nxt = unsafe { &*last }.next[0].naked_load();
                if nxt.is_marked() {
                    continue 'retry;
                }
                if nxt.as_ptr() == n {
                    s.nodes.push(n);
                    continue;
                }
            }
            segs.push(SegDraft {
                nodes: vec![n],
                w,
                count: 0,
                levels: Vec::new(),
            });
        }
        // Each op's target node, in op order (keys ascend in `key_node`).
        let op_nodes: Vec<*mut Node<V>> = ops
            .iter()
            .map(|op| {
                let i = key_node
                    .binary_search_by_key(&op.ik(), |(k, _)| *k)
                    // INVARIANT: `keys` is the sorted dedup of every op key
                    // and the locate loop pushed one entry per key (or
                    // retried).
                    .expect("every op key was located");
                key_node[i].1
            })
            .collect();
        // 2b. Plan each segment's population and chain shape. The
        //     population comes from a presence simulation over the op keys
        //     alone (one intra-node probe per distinct key — no data
        //     cloning). When the ops shrink the segment and the residual
        //     plus its level-0 successor fits one node, the successor is
        //     absorbed so the rebuild merges them — the k-op
        //     generalization of the paper's remove-and-merge (Fig. 11),
        //     skipped (it is only an optimization) whenever the successor
        //     cannot be read cleanly.
        let mut rng = rand::thread_rng();
        for s in segs.iter_mut() {
            // SAFETY: guard-protected; counts and data immutable.
            let mut count: usize = s.nodes.iter().map(|&o| unsafe { &*o }.count()).sum();
            let mut present: Vec<(u64, bool)> = Vec::new();
            let mut shrank = false;
            for (op, &n) in ops.iter().zip(&op_nodes) {
                if !s.nodes.contains(&n) {
                    continue;
                }
                let ik = op.ik();
                let slot = match present.iter().position(|(k, _)| *k == ik) {
                    Some(i) => i,
                    None => {
                        // SAFETY: affected node observed live under the
                        // guard; `data` is immutable.
                        let here = unsafe { &*n }
                            .data
                            .binary_search_by_key(&ik, |(k, _)| *k)
                            .is_ok();
                        present.push((ik, here));
                        present.len() - 1
                    }
                };
                match op {
                    ListOp::Put(..) => {
                        if !present[slot].1 {
                            present[slot].1 = true;
                            count += 1;
                        }
                    }
                    ListOp::Del(..) => {
                        if present[slot].1 {
                            present[slot].1 = false;
                            count -= 1;
                            shrank = true;
                        }
                    }
                }
            }
            if shrank {
                // INVARIANT: drafts are pushed with one node and never
                // emptied.
                let last = *s.nodes.last().expect("segments are non-empty");
                // SAFETY: guard-protected pointers.
                let nxt = unsafe { &*last }.next[0].naked_load();
                if !nxt.is_marked() && !nxt.as_ptr().is_null() {
                    let succ = nxt.as_ptr();
                    // SAFETY: unmarked committed non-null pointer read under
                    // the guard.
                    let succ_ref = unsafe { &*succ };
                    if succ_ref.live.naked_load()
                        && count + succ_ref.count() <= raw.params.node_size
                    {
                        // The successor is unaffected by construction (an
                        // affected immediate successor would already be in
                        // this segment).
                        s.nodes.push(succ);
                        count += succ_ref.count();
                    }
                }
            }
            s.count = count;
            s.levels = plan_shape(
                &s.nodes,
                count,
                raw.params.node_size,
                raw.params.max_level,
                &mut rng,
            );
        }
        // A torn observation can land one node in two segments; replacing
        // a node twice in one commit is never sound, so start over.
        {
            let mut all: Vec<*mut Node<V>> =
                segs.iter().flat_map(|s| s.nodes.iter().copied()).collect();
            let n_all = all.len();
            all.sort_unstable();
            all.dedup();
            if all.len() != n_all {
                continue 'retry;
            }
        }
        // 4. Rebuild each segment's chain (to the planned shape) and
        //    compute per-op results.
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(ops.len(), || None);
        let mut segments: Vec<ChainSegment<V>> = Vec::with_capacity(segs.len());
        for sd in segs {
            let mut data: Vec<(u64, V)> = Vec::with_capacity(sd.count);
            for &o in &sd.nodes {
                // SAFETY: guard-protected node pointer; `data` is immutable.
                data.extend(unsafe { &*o }.data.iter().cloned());
            }
            // Apply this segment's ops in batch input order so duplicate
            // keys keep sequential semantics.
            let mut changed = false;
            for (i, (op, &node)) in ops.iter().zip(&op_nodes).enumerate() {
                if !sd.nodes.contains(&node) {
                    continue;
                }
                match op {
                    ListOp::Put(ik, v) => {
                        match data.binary_search_by_key(ik, |(k, _)| *k) {
                            Ok(p) => {
                                results[i] =
                                    Some(std::mem::replace(&mut data[p], (*ik, (*v).clone())).1);
                            }
                            Err(p) => {
                                data.insert(p, (*ik, (*v).clone()));
                                results[i] = None;
                            }
                        }
                        changed = true;
                    }
                    ListOp::Del(ik) => match data.binary_search_by_key(ik, |(k, _)| *k) {
                        Ok(p) => {
                            results[i] = Some(data.remove(p).1);
                            changed = true;
                        }
                        Err(_) => results[i] = None,
                    },
                }
            }
            if !changed {
                // Only absent-key removes hit this segment: the list is
                // left untouched (the paper's `changed[j] = false`).
                continue;
            }
            if data.len() != sd.count {
                // The interference analysis ran against a shape this data
                // no longer matches (a racing op moved keys between the
                // probes): redo the whole plan rather than adapt, so the
                // wiring height the check cleared stays the one built.
                continue 'retry;
            }
            let r = sd.levels.len();
            // INVARIANT: `plan_shape` always pushes at least one level.
            let old_max = *sd.levels.last().expect("chains are non-empty");
            // SAFETY: guard-protected node; `high` is immutable.
            // INVARIANT: drafts are pushed with one node and never emptied.
            let last_high = unsafe { &**sd.nodes.last().expect("non-empty") }.high;
            let wire_height = sd.wire_height();
            let mut new_nodes = Vec::with_capacity(r);
            if r == 1 {
                // Common case: the whole segment collapses into one node;
                // hand the rebuilt data over without re-chunking.
                new_nodes.push(Node::alloc(last_high, old_max, data));
            } else {
                let total = data.len();
                let (base, extra) = (total / r, total % r);
                let mut rest = data;
                for (j, &level) in sd.levels.iter().enumerate() {
                    let len = base + usize::from(j < extra);
                    let tail = rest.split_off(len.min(rest.len()));
                    let chunk = rest;
                    rest = tail;
                    let high = if j == r - 1 {
                        // The last chain node keeps the segment's upper
                        // bound (and, via plan_shape, its tallest tower),
                        // so the wiring height covers every incoming
                        // pointer and tail chains stay full-height.
                        last_high
                    } else {
                        // INVARIANT: r = ceil(total/K) <= total, so every
                        // chunk receives base = total/r >= 1 keys.
                        chunk.last().expect("non-last chunks are non-empty").0
                    };
                    new_nodes.push(Node::alloc(high, level, chunk));
                }
            }
            let pa_wire = sd.w.pa[..wire_height].to_vec();
            segments.push(ChainSegment {
                w: sd.w,
                old: sd.nodes,
                new: new_nodes,
                old_max,
                wire_height,
                pa_wire,
            });
        }
        // 5. Interference substitution (see the module docs). Segments are
        //    in key order, which is also wiring order, so an earlier
        //    segment's chain is always in place by the time a later
        //    segment swings into it. Scanning `a` in ascending order makes
        //    the nearest earlier segment win when several could own a
        //    level (P -> a_new -> b_new -> c_new threads through each).
        for a in 0..segments.len() {
            for b in a + 1..segments.len() {
                for i in 0..segments[b].wire_height {
                    // The later segment must swing into the earlier one's
                    // replacement chain when (1) its level-i predecessor
                    // is one of the earlier segment's dying nodes, or
                    // (2) both segments would swing the *same live*
                    // predecessor slot — the earlier chain owns the level
                    // after its swing, and writing the shared slot twice
                    // would orphan it (and with it every key it holds:
                    // later window validations against the orphan would
                    // abort forever).
                    let redirect = segments[a].old.contains(&segments[b].w.pa[i])
                        || (i < segments[a].wire_height
                            && segments[b].w.pa[i] == segments[a].w.pa[i]);
                    if redirect {
                        let sub = last_new_above(&segments[a], i);
                        segments[b].pa_wire[i] = sub;
                    }
                }
            }
        }
        return MultiUpdatePlan {
            segments,
            results,
            published: Cell::new(false),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn raw() -> RawLeapList<u64> {
        RawLeapList::new(Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        })
    }

    // These tests are single-threaded, so nothing can retire a node while a
    // plan borrows it: the epoch-guard contract on the plan_* entry points
    // is vacuously satisfied, and plan-owned nodes live until the plan
    // drops. The helpers centralize that argument.

    fn plan_update_t<V: Clone>(l: &RawLeapList<V>, ik: u64, v: V) -> UpdatePlan<V> {
        // SAFETY: single-threaded test; see the module comment above.
        unsafe { plan_update(l, ik, v) }
    }

    fn plan_remove_t<V: Clone>(l: &RawLeapList<V>, ik: u64) -> Option<RemovePlan<V>> {
        // SAFETY: single-threaded test; see the module comment above.
        unsafe { plan_remove(l, ik) }
    }

    fn plan_multi_t<V: Clone>(l: &RawLeapList<V>, ops: &[ListOp<'_, V>]) -> MultiUpdatePlan<V> {
        // SAFETY: single-threaded test; see the module comment above.
        unsafe { plan_multi(l, ops) }
    }

    fn nref<'a, V>(p: *mut Node<V>) -> &'a Node<V> {
        // SAFETY: test nodes are plan-owned and unpublished; the plan (and
        // the list itself) outlive every reference the tests take.
        unsafe { &*p }
    }

    #[test]
    fn plan_update_on_empty_list_targets_tail() {
        let l = raw();
        let p = plan_update_t(&l, 100, 7u64);
        assert!(!p.split);
        assert_eq!(p.old_value, None);
        let n0 = nref(p.n0);
        assert_eq!(n0.high, u64::MAX, "replacement of the tail keeps +inf");
        assert_eq!(n0.data.to_vec(), vec![(100, 7)]);
        // Dropping the unpublished plan must free n0 (checked by miri/asan
        // and the leak-count integration tests).
    }

    #[test]
    fn plan_remove_absent_key_is_none() {
        let l = raw();
        assert!(plan_remove_t(&l, 55).is_none());
    }

    #[test]
    fn unpublished_plans_free_their_nodes() {
        // Drop-counting value type: every clone must be dropped again.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        #[derive(Clone)]
        struct D(#[allow(dead_code)] Arc<()>, Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let l: RawLeapList<D> = RawLeapList::new(Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        });
        {
            let p = plan_update_t(&l, 9, D(Arc::new(()), drops.clone()));
            drop(p);
        }
        // The original value plus any clones inside the discarded node.
        assert!(drops.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn plan_multi_groups_ops_into_one_tail_segment() {
        let l = raw();
        let ops = [
            ListOp::Put(10, &1u64),
            ListOp::Put(30, &3),
            ListOp::Put(20, &2),
        ];
        let p = plan_multi_t(&l, &ops);
        assert_eq!(p.results, vec![None, None, None]);
        assert_eq!(p.segments.len(), 1, "empty list: everything hits the tail");
        let seg = &p.segments[0];
        assert_eq!(seg.old.len(), 1);
        assert_eq!(seg.new.len(), 1, "3 keys fit one K=4 node");
        let n = nref(seg.new[0]);
        assert_eq!(
            n.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 20, 30],
            "rebuilt data is sorted regardless of op order"
        );
        assert_eq!(n.high, u64::MAX, "tail replacement keeps +inf");
        assert_eq!(seg.wire_height, seg.old_max);
    }

    #[test]
    fn plan_multi_duplicate_keys_keep_sequential_semantics() {
        let l = raw();
        let v = [7u64, 8, 9];
        let ops = [
            ListOp::Put(5, &v[0]),
            ListOp::Put(5, &v[1]),
            ListOp::Del(5),
            ListOp::Put(5, &v[2]),
        ];
        let p = plan_multi_t(&l, &ops);
        assert_eq!(p.results, vec![None, Some(7), Some(8), None]);
        let n = nref(p.segments[0].new[0]);
        assert_eq!(n.data.to_vec(), vec![(5, 9)], "last op wins");
    }

    #[test]
    fn plan_multi_absent_removes_touch_nothing() {
        let l = raw();
        let ops: [ListOp<u64>; 2] = [ListOp::Del(4), ListOp::Del(9)];
        let p = plan_multi_t(&l, &ops);
        assert!(p.segments.is_empty(), "no change, no replacement");
        assert_eq!(p.results, vec![None, None]);
    }

    #[test]
    fn plan_multi_rechunks_overflow_into_a_balanced_chain() {
        let l = raw(); // node_size 4
        let vals: Vec<u64> = (0..10).collect();
        let ops: Vec<ListOp<u64>> = (0..10)
            .map(|i| ListOp::Put(i * 2 + 1, &vals[i as usize]))
            .collect();
        let p = plan_multi_t(&l, &ops);
        assert_eq!(p.segments.len(), 1);
        let seg = &p.segments[0];
        assert_eq!(seg.new.len(), 3, "10 keys / K=4 -> 3 nodes");
        let mut collected = Vec::new();
        let mut prev_high = 0u64;
        for (j, &c) in seg.new.iter().enumerate() {
            let n = nref(c);
            assert!(n.count() <= 4, "chunk exceeds K");
            assert!(n.count() >= 3, "chunks are balanced");
            for (k, _) in n.data.iter() {
                assert!(*k > prev_high, "keys below a previous high bound");
                assert!(*k <= n.high);
                collected.push(*k);
            }
            prev_high = n.high;
            if j + 1 == seg.new.len() {
                assert_eq!(n.high, u64::MAX, "last chain node keeps old high");
                assert_eq!(n.level, seg.old_max);
            }
        }
        assert_eq!(collected, (0..10u64).map(|i| i * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn unpublished_multi_plans_free_their_chains() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        #[derive(Clone)]
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let l: RawLeapList<D> = RawLeapList::new(Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        });
        let vals: Vec<D> = (0..6).map(|_| D(drops.clone())).collect();
        {
            let ops: Vec<ListOp<D>> = vals
                .iter()
                .enumerate()
                .map(|(i, v)| ListOp::Put(i as u64 + 1, v))
                .collect();
            let p = plan_multi_t(&l, &ops);
            assert!(!p.segments.is_empty());
            drop(p);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            6,
            "every clone inside the discarded chain was freed"
        );
    }
}
