//! Structure configuration.

use crate::node::MAX_LEVEL_CAP;

/// How the uninstrumented (COP) predecessor search reads `next` pointers.
///
/// The paper (§2) implements marked-pointer checking and *discusses* the
/// alternative of single-location read transactions: "Another alternative
/// we explored was to access pointers in single-location read
/// transactions. However, this alternative proved to have a larger
/// negative impact on performance with the current GCC-TM implementation.
/// Nevertheless, we expect it will exhibit the best performance with HTM
/// support." Both are implemented here (ablation 4 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// Read pointers nakedly; retry on a mark or a dead node (the paper's
    /// deployed design, Fig. 3).
    #[default]
    MarkCheck,
    /// Read each pointer through a single-location read transaction
    /// (`TVar::read_single`): never observes a torn orec, still retries on
    /// marks/dead nodes.
    SingleLocationRead,
}

/// Configuration of a Leap-List instance.
///
/// The defaults are the paper's experimental settings (§3 "Settings"):
/// node size `K = 300` and a maximal tower level of 10, values found by the
/// authors to perform well.
///
/// # Example
///
/// ```
/// use leaplist::Params;
/// let p = Params::default();
/// assert_eq!(p.node_size, 300);
/// assert_eq!(p.max_level, 10);
/// let small = Params { node_size: 8, ..Params::default() };
/// small.validate();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    /// Maximum number of key-value pairs per node (the paper's `K`); a node
    /// reaching this size splits on the next update.
    pub node_size: usize,
    /// Maximum tower height.
    pub max_level: usize,
    /// Whether intra-node lookups use the embedded trie (the paper's
    /// design) or plain binary search (ablation baseline).
    pub use_trie: bool,
    /// COP traversal style (see [`Traversal`]).
    pub traversal: Traversal,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            node_size: 300,
            max_level: 10,
            use_trie: true,
            traversal: Traversal::MarkCheck,
        }
    }
}

impl Params {
    /// Checks invariants.
    ///
    /// # Panics
    ///
    /// Panics if `node_size < 2` or `max_level` is outside
    /// `1..=MAX_LEVEL_CAP`.
    pub fn validate(&self) {
        assert!(self.node_size >= 2, "node_size must be at least 2");
        assert!(
            (1..=MAX_LEVEL_CAP).contains(&self.max_level),
            "max_level must be in 1..={MAX_LEVEL_CAP}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Params::default();
        assert_eq!(p.node_size, 300);
        assert_eq!(p.max_level, 10);
        assert!(p.use_trie);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "node_size")]
    fn rejects_tiny_nodes() {
        Params {
            node_size: 1,
            ..Params::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_level")]
    fn rejects_oversized_level() {
        Params {
            max_level: 99,
            ..Params::default()
        }
        .validate();
    }
}
