//! Version bundles on level-0 forward links — the *bundled references*
//! technique (Nelson-Slivon et al., "Bundled References: An Abstraction
//! for Highly-Concurrent Linearizable Range Queries").
//!
//! Each node's level-0 next pointer carries a short, timestamped history
//! of its past values: a singly-linked chain of [`BundleEntry`]s in
//! strictly descending commit-timestamp order, newest first. A committed
//! update appends one entry (its commit timestamp `wv`, the post-swing
//! successor) to the level-0 predecessor's bundle during the post-commit
//! wiring window, and seeds every freshly published node's bundle with
//! `(wv, wired successor)`. A reader holding a pinned snapshot timestamp
//! `ts` (see [`StmDomain::pin_snapshot`](leap_stm::StmDomain)) resolves
//! each link through the newest entry with `entry.ts <= ts` and thereby
//! walks the list exactly as it was at `ts` — with **no transaction and no
//! retries** against concurrent commits.
//!
//! # Why appends need no synchronization of their own
//!
//! Bundle mutation happens only inside the post-commit wiring window of
//! the committing LT transaction, which holds the marked-pointer lease on
//! the level-0 predecessor (the transaction marked `pa[0].next[0]`, so no
//! other commit can validate — let alone mark — that window until the
//! swing publishes the replacement). Appends on one bundle are therefore
//! serialized by the same lease that serializes the pointer swings, and
//! cross-commit entries arrive in commit order — descending `ts` from the
//! head. Two segments of the *same* commit can target one bundle (plan
//! interference substitution); the second append observes the head entry
//! already carrying its own `wv` and replaces it instead of stacking a
//! duplicate timestamp.
//!
//! # Reclamation
//!
//! Entries older than the newest one at-or-below the domain's
//! [`prune_bound`](leap_stm::StmDomain::prune_bound) are unreachable by
//! every present and future snapshot, and are cut from the chain on the
//! next append (the *bounded depth* property: the chain holds one entry
//! per commit younger than the oldest live pin, plus one). Cut tails and
//! replaced heads are handed to `crates/ebr` so readers mid-traversal
//! stay safe; a node's residual chain is freed with the node itself.

use crate::node::{public_key, Node};
use crate::raw::RawLeapList;
use leap_ebr::Guard;
use std::sync::atomic::{AtomicPtr, Ordering};

/// One timestamped version of a level-0 forward link.
pub(crate) struct BundleEntry<V> {
    /// Commit timestamp this link value was installed at.
    ts: u64,
    /// The level-0 successor as of `ts`.
    ptr: *mut Node<V>,
    /// Next-older entry (strictly smaller `ts`), null at the chain's end.
    next: AtomicPtr<BundleEntry<V>>,
}

// SAFETY: an entry owns only its own allocation; the node behind `ptr` is
// managed by the list's own EBR protocol. Sending an entry between threads
// (for deferred reclamation) touches nothing it does not own.
unsafe impl<V> Send for BundleEntry<V> {}

impl<V> BundleEntry<V> {
    fn alloc(ts: u64, ptr: *mut Node<V>, next: *mut BundleEntry<V>) -> *mut Self {
        Box::into_raw(Box::new(BundleEntry {
            ts,
            ptr,
            next: AtomicPtr::new(next),
        }))
    }
}

/// The timestamped version list riding on a node's level-0 forward link.
pub(crate) struct Bundle<V> {
    head: AtomicPtr<BundleEntry<V>>,
}

impl<V> Bundle<V> {
    pub(crate) fn new() -> Self {
        Bundle {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Seeds a freshly published (or sentinel) node's bundle with its
    /// first version. Exclusive access: the node is not yet reachable by
    /// snapshot readers (its `created_ts` store has not been ordered
    /// before any pinnable timestamp — see the wiring watermark).
    pub(crate) fn seed(&self, ts: u64, ptr: *mut Node<V>) {
        // ORDERING: debug-only sanity read under exclusive access; no
        // publication depends on it.
        debug_assert!(self.head.load(Ordering::Relaxed).is_null());
        self.head.store(
            BundleEntry::alloc(ts, ptr, std::ptr::null_mut()),
            Ordering::Release,
        );
    }

    /// Appends version `(ts, ptr)` under the marked-pointer lease (see the
    /// module docs), pruning entries unreachable below `bound`, and
    /// returns the resulting chain depth.
    ///
    /// If the head already carries `ts` (a later segment of the same
    /// commit re-swung this link), the head is *replaced*, keeping the
    /// descending-`ts` invariant.
    ///
    /// # Safety
    ///
    /// Caller must hold the wiring lease for this bundle's node and the
    /// epoch guard `guard`.
    pub(crate) unsafe fn append(
        &self,
        ts: u64,
        ptr: *mut Node<V>,
        bound: u64,
        guard: &Guard,
    ) -> usize
    where
        V: 'static,
    {
        let head = self.head.load(Ordering::Acquire);
        // SAFETY: entries are freed only through the guard's epoch, so the
        // non-null head (and its fields) stay valid for all three reads
        // below.
        let (next, replaced) = if !head.is_null() && unsafe { (*head).ts } == ts {
            // Same-commit replacement: skip the stale head.
            // SAFETY: same non-null guard-protected head as above.
            (unsafe { (*head).next.load(Ordering::Acquire) }, Some(head))
        } else {
            // SAFETY: same guard-protected head; null short-circuits.
            debug_assert!(head.is_null() || unsafe { (*head).ts } < ts);
            (head, None)
        };
        let fresh = BundleEntry::alloc(ts, ptr, next);
        self.head.store(fresh, Ordering::Release);
        if let Some(old) = replaced {
            // Deferred only after the new head published, so a reader that
            // pins between the deferral and the store cannot load `old`.
            // SAFETY: `old` is now unreachable from the chain; concurrent
            // readers already holding it are covered by the deferral.
            unsafe { guard.defer_drop_box(old) };
        }
        // Prune: keep every entry with `ts > bound` plus the newest entry
        // at-or-below `bound` (the version visible at the oldest pin); cut
        // and defer everything older.
        let mut depth = 1usize;
        let mut cur = fresh;
        loop {
            // SAFETY: reachable entries are live under the guard.
            let nxt = unsafe { (*cur).next.load(Ordering::Acquire) };
            if nxt.is_null() {
                return depth;
            }
            // SAFETY: `cur` is reachable, hence live under the guard.
            if unsafe { (*cur).ts } <= bound {
                // `cur` is the newest entry at-or-below the bound: nothing
                // older is visible to any present or future pin.
                // SAFETY: `cur` is live; cutting here only hides entries no
                // pin can resolve onto.
                unsafe { (*cur).next.store(std::ptr::null_mut(), Ordering::Release) };
                let mut dead = nxt;
                while !dead.is_null() {
                    // SAFETY: the cut tail is unreachable from the chain but
                    // not yet freed; in-flight readers are covered by the
                    // deferral.
                    let dn = unsafe { (*dead).next.load(Ordering::Acquire) };
                    // SAFETY: `dead` was just unlinked; the epoch deferral
                    // covers readers that still hold it.
                    unsafe { guard.defer_drop_box(dead) };
                    dead = dn;
                }
                return depth;
            }
            depth += 1;
            cur = nxt;
        }
    }

    /// The level-0 successor visible at `ts`: the newest entry with
    /// `entry.ts <= ts`, or null if every recorded version is newer (the
    /// node itself is then not visible at `ts` either).
    ///
    /// # Safety
    ///
    /// Caller must hold an epoch guard pinned before `ts` was pinned on
    /// the domain, so neither the entries nor the node behind the returned
    /// pointer can be reclaimed underneath it.
    pub(crate) unsafe fn resolve(&self, ts: u64) -> *mut Node<V> {
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: reachable entries are live under the caller's guard.
            let e = unsafe { &*cur };
            if e.ts <= ts {
                return e.ptr;
            }
            cur = e.next.load(Ordering::Acquire);
        }
        std::ptr::null_mut()
    }

    /// Current chain depth (diagnostics).
    #[cfg(test)]
    pub(crate) fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            // SAFETY: called under a guard (diagnostics) or exclusively.
            cur = unsafe { &*cur }.next.load(Ordering::Acquire);
        }
        n
    }
}

impl<V> Drop for Bundle<V> {
    fn drop(&mut self) {
        // Exclusive access: the owning node is being freed (unpublished,
        // or unlinked and past its grace period).
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: `&mut self` proves exclusive access; every chain
            // entry is owned by this bundle and freed exactly once here.
            let mut e = unsafe { Box::from_raw(cur) };
            cur = *e.next.get_mut();
        }
    }
}

/// Timestamp-aware limbo for retired nodes — the reclamation half of the
/// bundled-references design.
///
/// Epoch-based reclamation alone cannot protect snapshot readers: EBR's
/// safety argument assumes a reader can only reach objects through the
/// *live* structure at pin time, but a bundle walk deliberately resolves
/// links **back in time** onto nodes retired by commits younger than the
/// pinned timestamp. Deferring such a node straight to EBR frees it two
/// epoch advances later even while a pinned snapshot still needs it.
///
/// So retirement is two-staged: committed batches *park* their dying
/// nodes here, tagged with the retiring commit's `wv`, and later drains
/// hand a parked node to the EBR deferral queue only once the domain's
/// [`prune_bound`](leap_stm::StmDomain::prune_bound) has reached `wv` —
/// at that point every live pin has `ts >= wv` (the node, retired at
/// `wv`, is invisible at every such `ts`) and the watermark guarantees
/// every future pin will too. The EBR grace period then covers plain
/// transaction-free readers that found the node through the live list
/// just before it was unlinked.
///
/// Parked nodes are bounded by the write volume per pin lifetime (the
/// same bound as bundle depth); with no pins live the next committed
/// batch drains everything, and the list's drop frees any residue.
pub(crate) struct Limbo<V> {
    parked: std::sync::Mutex<Vec<(u64, *mut Node<V>)>>,
}

// SAFETY: the limbo owns unlinked nodes outright; parking and draining
// move raw pointers whose referents no other structure mutates.
unsafe impl<V: Send> Send for Limbo<V> {}
// SAFETY: all shared state sits behind the internal mutex.
unsafe impl<V: Send> Sync for Limbo<V> {}

impl<V> Limbo<V> {
    pub(crate) fn new() -> Self {
        Limbo {
            parked: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Parks `retired` (dying nodes of a commit stamped `wv`), then frees
    /// — via EBR deferral under `guard` — every parked node whose
    /// retirement timestamp is at-or-below `bound`.
    ///
    /// # Safety
    ///
    /// Every pointer in `retired` must be unlinked from the live list,
    /// have `retired_ts == wv`, and be owned by the caller; `bound` must
    /// come from the list's domain's `prune_bound()` read **after** the
    /// commit's wiring window closed.
    pub(crate) unsafe fn park_and_drain(
        &self,
        wv: u64,
        retired: Vec<*mut Node<V>>,
        bound: u64,
        guard: &Guard,
    ) where
        V: Send + 'static,
    {
        // INVARIANT: no code path panics while holding this lock.
        let mut parked = self.parked.lock().expect("limbo poisoned");
        parked.extend(retired.into_iter().map(|n| (wv, n)));
        let mut i = 0;
        while i < parked.len() {
            if parked[i].0 <= bound {
                let (_, node) = parked.swap_remove(i);
                // SAFETY: no live pin can resolve onto a node retired
                // at-or-below the bound (see type docs); the deferral
                // covers readers that reached it pre-unlink.
                unsafe { guard.defer_drop_box(node) };
            } else {
                i += 1;
            }
        }
    }

    /// Number of nodes awaiting a safe retirement bound (diagnostics).
    #[cfg(test)]
    pub(crate) fn parked(&self) -> usize {
        self.parked.lock().expect("limbo poisoned").len()
    }
}

impl<V> Drop for Limbo<V> {
    fn drop(&mut self) {
        // Exclusive access: the owning list is being dropped, so no
        // snapshot over it can still be live.
        // INVARIANT: no code path panics while holding this lock.
        for &(_, node) in self.parked.get_mut().expect("limbo poisoned").iter() {
            // SAFETY: parked nodes are unlinked and owned by the limbo.
            unsafe { crate::node::free_node(node) };
        }
    }
}

/// Stamps one committed segment: seeds every replacement node's
/// `created_ts` and bundle, retires the dying run, and appends the
/// *about-to-be-swung* first chain node to the level-0 predecessor's
/// bundle. Returns the predecessor bundle's resulting depth (the store's
/// `bundle_depth` stat).
///
/// Must run after [`wire_chain`](crate::wire::wire_chain) and **before**
/// [`publish_segment`](crate::wire::publish_segment) for the same
/// segment: the predecessor's level-0 pointer is still marked here, so
/// the wiring lease covering the bundle append is still held — the
/// publish swing is what releases it, and a foreign commit appending to
/// the same bundle afterwards necessarily carries a larger `wv`
/// (descending order preserved). Within the commit's wiring window
/// (before the [`WiringTicket`](leap_stm::WiringTicket) drops) the
/// intermediate states below — nodes stamped but unpublished, a
/// same-commit bundle entry pointing at a same-commit dying node — are
/// unobservable at any pinnable timestamp.
///
/// # Safety
///
/// Same contract as `wire_chain`, plus `guard` must be the epoch guard
/// the plan was built under.
pub(crate) unsafe fn stamp_segment<V: 'static>(
    seg: &crate::plan::ChainSegment<V>,
    wv: u64,
    bound: u64,
    guard: &Guard,
) -> usize {
    // SAFETY: (whole block) segment pointers are valid under the caller's
    // guard; the dying nodes' links are frozen (marked), the new chain is
    // unpublished (exclusive), and the predecessor's bundle is covered by
    // the still-held wiring lease (see above).
    unsafe {
        for &c in &seg.new {
            let cn = &*c;
            cn.bundle
                .seed(wv, cn.next[0].naked_load().unmarked().as_ptr());
            cn.created_ts.store(wv, Ordering::Release);
        }
        for &o in &seg.old {
            (*o).retired_ts.store(wv, Ordering::Release);
        }
        // The level-0 swing target `publish_segment` will install: every
        // node has level >= 1, so it is the first chain node.
        let first = seg.new[0];
        (*seg.pa_wire[0]).bundle.append(wv, first, bound, guard)
    }
}

/// Collects up to `limit` pairs with internal keys in `[ilo, ihi]` from
/// the list **as it was at snapshot timestamp `ts`**: a transaction-free,
/// retry-free level-0 walk that resolves every forward link through its
/// bundle.
///
/// The walk starts from the live predecessor window of `ilo` — the lowest
/// window node already published at `ts` (windows near a hot write point
/// may be younger than the snapshot; higher-level predecessors are
/// statistically older) — and falls back to the head sentinel, which is
/// never replaced.
///
/// # Safety
///
/// Caller must hold an epoch guard pinned **before** `ts` was pinned on
/// the list's domain, and `ts` must be at most the domain's
/// [`snapshot_ts`](leap_stm::StmDomain::snapshot_ts) with a live
/// [`SnapshotPin`](leap_stm::SnapshotPin) at-or-below `ts` (so bundle
/// pruning preserves every version visible at `ts`).
pub(crate) unsafe fn snapshot_collect<V: Clone>(
    raw: &RawLeapList<V>,
    ts: u64,
    ilo: u64,
    ihi: u64,
    limit: usize,
    out: &mut Vec<(u64, V)>,
) {
    debug_assert!(ilo >= 1 && ilo <= ihi && limit > 0);
    // SAFETY: traversal under the caller's guard.
    let w = unsafe { raw.search_predecessors(ilo) };
    let mut cur = raw.head();
    for i in 0..raw.params.max_level {
        let pa = w.pa[i];
        // A live predecessor created at-or-before `ts` is on the snapshot
        // chain: live-now means no commit with wv <= ts retired it (the
        // watermark orders completed wirings before pinnable timestamps).
        // SAFETY: `pa` came from a search under the caller's guard.
        if unsafe { &*pa }.created_ts.load(Ordering::Acquire) <= ts {
            cur = pa;
            break;
        }
    }
    let start = out.len();
    loop {
        // SAFETY: nodes on the snapshot chain at `ts` stay allocated under
        // the caller's guard (retirements after the guard's pin are
        // deferred; earlier retirements are invisible at `ts`).
        let node = unsafe { &*cur };
        debug_assert!(node.visible_at(ts), "snapshot walk left the ts-chain");
        for (k, v) in node.data.iter() {
            if *k >= ilo && *k <= ihi {
                out.push((public_key(*k), v.clone()));
                if out.len() - start == limit {
                    return;
                }
            }
        }
        if node.high >= ihi {
            return;
        }
        // SAFETY: resolution under the caller's guard; a node visible at
        // `ts` was stamped (seeded) at-or-before `ts`, so the resolved
        // successor is non-null.
        let nxt = unsafe { node.bundle.resolve(ts) };
        debug_assert!(!nxt.is_null(), "visible node lacks a version at ts");
        cur = nxt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_ebr::pin;

    fn node(high: u64) -> *mut Node<u64> {
        Node::alloc(high, 1, Vec::new())
    }

    #[test]
    fn resolve_picks_newest_at_or_below() {
        let g = pin();
        let b: Bundle<u64> = Bundle::new();
        let (n1, n2, n3) = (node(1), node(2), node(3));
        b.seed(2, n1);
        // SAFETY: single-threaded test; this path owns every node and entry.
        unsafe {
            assert_eq!(b.append(5, n2, 0, &g), 2);
            assert_eq!(b.append(9, n3, 0, &g), 3);
            assert!(b.resolve(1).is_null(), "older than every version");
            assert_eq!(b.resolve(2), n1);
            assert_eq!(b.resolve(4), n1);
            assert_eq!(b.resolve(5), n2);
            assert_eq!(b.resolve(8), n2);
            assert_eq!(b.resolve(9), n3);
            assert_eq!(b.resolve(u64::MAX), n3);
            crate::node::free_node(n1);
            crate::node::free_node(n2);
            crate::node::free_node(n3);
        }
    }

    #[test]
    fn same_ts_append_replaces_head() {
        let g = pin();
        let b: Bundle<u64> = Bundle::new();
        let (n1, n2, n3) = (node(1), node(2), node(3));
        b.seed(3, n1);
        // SAFETY: single-threaded test; this path owns every node and entry.
        unsafe {
            assert_eq!(b.append(7, n2, 0, &g), 2);
            // A later same-commit segment re-swings the link.
            assert_eq!(b.append(7, n3, 0, &g), 2, "replacement must not stack");
            assert_eq!(b.resolve(7), n3);
            assert_eq!(b.resolve(6), n1, "older version survives replacement");
            crate::node::free_node(n1);
            crate::node::free_node(n2);
            crate::node::free_node(n3);
        }
    }

    #[test]
    fn prune_keeps_version_visible_at_bound() {
        let g = pin();
        let b: Bundle<u64> = Bundle::new();
        let nodes: Vec<_> = (0..6).map(node).collect();
        b.seed(10, nodes[0]);
        // SAFETY: single-threaded test; this path owns every node and entry.
        unsafe {
            b.append(20, nodes[1], 0, &g);
            b.append(30, nodes[2], 0, &g);
            // Bound 25: entry at 20 is the version visible at 25 — keep
            // it, cut the one at 10.
            assert_eq!(b.append(40, nodes[3], 25, &g), 3);
            assert_eq!(b.resolve(25), nodes[1], "bound's version preserved");
            assert!(b.resolve(15).is_null(), "pre-bound history pruned");
            // Bound at the newest entry collapses to depth 2 (fresh + it).
            assert_eq!(b.append(50, nodes[4], 40, &g), 2);
            assert_eq!(b.depth(), 2);
            for n in nodes {
                crate::node::free_node(n);
            }
        }
    }
}
