//! The shared physical Leap-List: sentinels, the uninstrumented (COP)
//! predecessor search of Fig. 3, and structural helpers used by every
//! synchronization variant.

use crate::node::{free_node, Node, MAX_LEVEL_CAP};
use crate::params::Params;
use leap_stm::TaggedPtr;

/// Result of the predecessor search: for each level `i`, `pa[i]` is the
/// last node with `high < ik` and `na[i] = pa[i].next[i]` is the first with
/// `high >= ik` (paper Fig. 3).
pub(crate) struct SearchWindow<V> {
    pub pa: [*mut Node<V>; MAX_LEVEL_CAP],
    pub na: [*mut Node<V>; MAX_LEVEL_CAP],
}

impl<V> SearchWindow<V> {
    pub(crate) fn empty() -> Self {
        SearchWindow {
            pa: [std::ptr::null_mut(); MAX_LEVEL_CAP],
            na: [std::ptr::null_mut(); MAX_LEVEL_CAP],
        }
    }

    /// The node whose range contains the searched key.
    pub fn target(&self) -> *mut Node<V> {
        self.na[0]
    }
}

/// The raw structure shared by all variants. Synchronization (transactions,
/// locks) lives in the variant wrappers; `RawLeapList` only knows the
/// memory layout and the traversal.
pub(crate) struct RawLeapList<V> {
    head: *mut Node<V>,
    pub params: Params,
    /// Set when `params.traversal == Traversal::SingleLocationRead`: next
    /// pointers are read through single-location read transactions on this
    /// domain (the paper's HTM-oriented alternative, §2.1).
    slr_domain: Option<std::sync::Arc<leap_stm::StmDomain>>,
}

// SAFETY: the raw list is a set of heap nodes reached through atomic
// (TVar) pointers; all shared mutation goes through those atomics and the
// variant-level synchronization protocols.
unsafe impl<V: Send + Sync> Send for RawLeapList<V> {}
// SAFETY: as above — shared access is mediated by the same atomics.
unsafe impl<V: Send + Sync> Sync for RawLeapList<V> {}

impl<V> RawLeapList<V> {
    /// Builds the two-sentinel empty list of §2.1: a head whose range is
    /// bounded above by the minimum (internal 0) and an empty tail covering
    /// `(0, +inf]` at full height so every level terminates at a node with
    /// `high == u64::MAX`.
    pub fn new(params: Params) -> Self {
        Self::with_slr_domain(params, None)
    }

    /// As [`RawLeapList::new`], additionally wiring the domain used by the
    /// single-location-read traversal (ignored under
    /// [`Traversal::MarkCheck`](crate::params::Traversal::MarkCheck)).
    pub fn with_slr_domain(
        params: Params,
        domain: Option<std::sync::Arc<leap_stm::StmDomain>>,
    ) -> Self {
        params.validate();
        let head = Node::alloc(0, params.max_level, Vec::new());
        let tail = Node::alloc(u64::MAX, params.max_level, Vec::new());
        // SAFETY: both sentinels were just allocated and are unpublished;
        // this constructor has exclusive access.
        unsafe {
            for i in 0..params.max_level {
                (*head).next[i].naked_store(TaggedPtr::new(tail));
            }
            (*head).live.naked_store(true);
            (*tail).live.naked_store(true);
            // Seed the sentinels at timestamp 0 so every snapshot — however
            // old its pin — can start at the head and resolve its way to
            // the tail. (The head is never replaced; a replaced tail's
            // successor gets stamped like any other node.)
            (*head)
                .created_ts
                .store(0, std::sync::atomic::Ordering::Release);
            (*tail)
                .created_ts
                .store(0, std::sync::atomic::Ordering::Release);
            (*head).bundle.seed(0, tail);
        }
        let slr_domain = match params.traversal {
            crate::params::Traversal::MarkCheck => None,
            crate::params::Traversal::SingleLocationRead => domain,
        };
        RawLeapList {
            head,
            params,
            slr_domain,
        }
    }

    pub fn head(&self) -> *mut Node<V> {
        self.head
    }

    /// The paper's Search Predecessors (Fig. 3): an uninstrumented
    /// traversal that restarts whenever it meets a marked pointer or a
    /// non-live node, so it only ever walks committed, valid nodes.
    ///
    /// # Safety
    ///
    /// The caller must hold an epoch guard (or otherwise exclude
    /// reclamation) for the duration of the call and for as long as it
    /// dereferences the returned pointers.
    pub unsafe fn search_predecessors(&self, ik: u64) -> SearchWindow<V> {
        debug_assert!(ik >= 1);
        let mut retries = 0u32;
        'retry: loop {
            // A marked pointer / dead node means some committed update is
            // mid-release. On oversubscribed hosts the releasing thread may
            // be descheduled, so hot-spinning here burns its time slice:
            // yield after a few attempts.
            retries += 1;
            if retries > 16 {
                std::thread::yield_now();
            }
            let mut w = SearchWindow::empty();
            let mut x = self.head;
            for i in (0..self.params.max_level).rev() {
                let x_next;
                loop {
                    // SAFETY: x is the head or a node observed live below;
                    // the guard keeps it allocated.
                    let slot = &unsafe { &*x }.next[i];
                    let nxt = match &self.slr_domain {
                        None => slot.naked_load(),
                        // The paper's alternative: a single-location read
                        // transaction per pointer (ideal under HTM).
                        Some(d) => slot.read_single(d),
                    };
                    if nxt.is_marked() {
                        continue 'retry;
                    }
                    let n = nxt.as_ptr();
                    debug_assert!(!n.is_null(), "levels always end at the tail");
                    // SAFETY: unmarked committed pointer under guard.
                    if !unsafe { &*n }.live.naked_load() {
                        continue 'retry;
                    }
                    // SAFETY: same pointer, observed live just above.
                    if unsafe { &*n }.high >= ik {
                        x_next = n;
                        break;
                    }
                    x = n;
                }
                w.pa[i] = x;
                w.na[i] = x_next;
            }
            return w;
        }
    }

    /// Walks level 0 (single-threaded callers only: tests, `Drop`, `len`).
    ///
    /// # Safety
    ///
    /// No concurrent mutation may be in flight.
    pub unsafe fn for_each_node(&self, mut f: impl FnMut(&Node<V>)) {
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: exclusive access per contract.
            let node = unsafe { &*cur };
            f(node);
            cur = node.next[0].naked_load().as_ptr();
        }
    }

    /// Total number of keys (O(n); walks level 0 with naked loads).
    pub fn len_unsynced(&self) -> usize {
        let mut n = 0;
        // SAFETY: count is advisory; nodes stay allocated under the
        // caller's guard (variants pin before calling).
        unsafe { self.for_each_node(|node| n += node.count()) };
        n
    }
}

impl<V> Drop for RawLeapList<V> {
    fn drop(&mut self) {
        // Exclusive access: free every node linked at level 0. Replaced
        // (unlinked) nodes are owned by the EBR deferral queues.
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: `&mut self` proves exclusive access; every level-0
            // linked node is owned by the list.
            let next = unsafe { &*cur }.next[0].naked_load().as_ptr();
            // SAFETY: `cur` was unlinked from nothing — the whole list dies
            // here, and each node is freed exactly once.
            unsafe { free_node(cur) };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params {
            node_size: 4,
            max_level: 4,
            use_trie: true,
            ..Params::default()
        }
    }

    #[test]
    fn empty_list_has_two_sentinels() {
        let l: RawLeapList<u64> = RawLeapList::new(params());
        let mut highs = Vec::new();
        // SAFETY: single-threaded test; no concurrent mutation.
        unsafe { l.for_each_node(|n| highs.push(n.high)) };
        assert_eq!(highs, vec![0, u64::MAX]);
        assert_eq!(l.len_unsynced(), 0);
    }

    #[test]
    fn search_on_empty_list_returns_tail_at_every_level() {
        let l: RawLeapList<u64> = RawLeapList::new(params());
        // SAFETY: single-threaded test; nothing reclaims nodes.
        let w = unsafe { l.search_predecessors(500) };
        let head = l.head();
        for i in 0..4 {
            assert_eq!(w.pa[i], head);
            // SAFETY: sentinel nodes live as long as the list.
            assert_eq!(unsafe { &*w.na[i] }.high, u64::MAX);
        }
        assert_eq!(w.target(), w.na[0]);
    }

    #[test]
    fn search_skips_low_nodes() {
        // Hand-build head -> A(high=10,l2) -> tail and search beyond A.
        let l: RawLeapList<u64> = RawLeapList::new(params());
        let head = l.head();
        // SAFETY: single-threaded test; the hand-built nodes are owned by
        // the list (freed by its drop) and nothing reclaims concurrently.
        unsafe {
            let tail = (*head).next[0].naked_load().as_ptr();
            let a = Node::alloc(10, 2, vec![(5, 50u64)]);
            for i in 0..2 {
                (*a).next[i].naked_store(TaggedPtr::new(tail));
                (*head).next[i].naked_store(TaggedPtr::new(a));
            }
            (*a).live.naked_store(true);

            let w = l.search_predecessors(7);
            assert_eq!(w.na[0], a, "key 7 belongs to A's range");
            assert_eq!(w.pa[0], head);

            let w2 = l.search_predecessors(11);
            assert_eq!(w2.na[0], tail, "key 11 is past A");
            assert_eq!(w2.pa[0], a);
            assert_eq!(w2.pa[3], head, "A is only level 2: upper pa is head");
            assert_eq!(w2.na[3], tail);
        }
        assert_eq!(l.len_unsynced(), 1);
    }
}
