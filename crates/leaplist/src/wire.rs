//! The *release-and-update* phase (paper Figs. 10 and 13): after the
//! locking transaction committed (old nodes dead, window pointers marked),
//! the replacement nodes are wired in with plain (naked) atomic stores and
//! finally made live.
//!
//! Safety of the naked stores rests on the marked-pointer lease: every
//! `TVar` written here was marked inside the committed LT transaction, so
//! no concurrent transaction can validate a read of it (the mark is an
//! explicit-abort trigger and the orec version moved), and no other release
//! phase can own it (its transaction would have had to mark it first).

use crate::plan::{RemovePlan, UpdatePlan};
use leap_stm::TaggedPtr;

/// Wires an update's replacement node(s) (Fig. 10).
///
/// # Safety
///
/// Must only be called once, after the plan's LT transaction committed,
/// while holding the epoch guard used for the plan.
pub(crate) unsafe fn wire_update<V>(plan: &UpdatePlan<V>) {
    // SAFETY: plan pointers valid under the caller's guard; `n`'s outgoing
    // pointers are frozen (marked) so reading them naked is stable.
    unsafe {
        let n = &*plan.n;
        let n0 = &*plan.n0;
        if plan.split {
            let n1 = &*plan.n1;
            let (l0, l1) = (n0.level, n1.level);
            // Upper node takes over the old node's outgoing links.
            for i in 0..l1 {
                n1.next[i].naked_store(n.next[i].naked_load().unmarked());
            }
            // Lower node points at the upper one where both exist...
            for i in 0..l0.min(l1) {
                n0.next[i].naked_store(TaggedPtr::new(plan.n1));
            }
            // ...and skips it where the lower tower is taller.
            for i in l1..l0 {
                n0.next[i].naked_store(TaggedPtr::new(plan.w.na[i]));
            }
            // Swing the predecessors; this is what publishes the nodes.
            for i in 0..l0 {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n0));
            }
            for i in l0..l1 {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n1));
            }
            n0.live.naked_store(true);
            n1.live.naked_store(true);
        } else {
            for i in 0..n0.level {
                n0.next[i].naked_store(n.next[i].naked_load().unmarked());
            }
            for i in 0..n0.level {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n0));
            }
            n0.live.naked_store(true);
        }
    }
    plan.mark_published();
}

/// Wires a remove's replacement node (Fig. 13).
///
/// # Safety
///
/// Same contract as [`wire_update`].
pub(crate) unsafe fn wire_remove<V>(plan: &RemovePlan<V>) {
    // SAFETY: as in `wire_update`.
    unsafe {
        let nn = &*plan.n_new;
        if plan.merge {
            let n1 = &*plan.n1;
            // Outgoing links: the successor's where it exists, the removed
            // node's own above that.
            for i in 0..n1.level.min(nn.level) {
                nn.next[i].naked_store(n1.next[i].naked_load().unmarked());
            }
            for i in n1.level..nn.level {
                nn.next[i].naked_store((*plan.n0).next[i].naked_load().unmarked());
            }
        } else {
            for i in 0..nn.level {
                nn.next[i].naked_store((*plan.n0).next[i].naked_load().unmarked());
            }
        }
        for i in 0..nn.level {
            (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n_new));
        }
        nn.live.naked_store(true);
    }
    plan.mark_published();
}
