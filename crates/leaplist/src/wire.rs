//! The *release-and-update* phase (paper Figs. 10 and 13): after the
//! locking transaction committed (old nodes dead, window pointers marked),
//! the replacement nodes are wired in with plain (naked) atomic stores and
//! finally made live.
//!
//! Safety of the naked stores rests on the marked-pointer lease: every
//! `TVar` written here was marked inside the committed LT transaction, so
//! no concurrent transaction can validate a read of it (the mark is an
//! explicit-abort trigger and the orec version moved), and no other release
//! phase can own it (its transaction would have had to mark it first).

use crate::node::Node;
use crate::plan::{ChainSegment, RemovePlan, UpdatePlan};
use leap_stm::TaggedPtr;

/// Wires an update's replacement node(s) (Fig. 10).
///
/// # Safety
///
/// Must only be called once, after the plan's LT transaction committed,
/// while holding the epoch guard used for the plan.
pub(crate) unsafe fn wire_update<V>(plan: &UpdatePlan<V>) {
    // SAFETY: plan pointers valid under the caller's guard; `n`'s outgoing
    // pointers are frozen (marked) so reading them naked is stable.
    unsafe {
        let n = &*plan.n;
        let n0 = &*plan.n0;
        if plan.split {
            let n1 = &*plan.n1;
            let (l0, l1) = (n0.level, n1.level);
            // Upper node takes over the old node's outgoing links.
            for i in 0..l1 {
                n1.next[i].naked_store(n.next[i].naked_load().unmarked());
            }
            // Lower node points at the upper one where both exist...
            for i in 0..l0.min(l1) {
                n0.next[i].naked_store(TaggedPtr::new(plan.n1));
            }
            // ...and skips it where the lower tower is taller.
            for i in l1..l0 {
                n0.next[i].naked_store(TaggedPtr::new(plan.w.na[i]));
            }
            // Swing the predecessors; this is what publishes the nodes.
            for i in 0..l0 {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n0));
            }
            for i in l0..l1 {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n1));
            }
            n0.live.naked_store(true);
            n1.live.naked_store(true);
        } else {
            for i in 0..n0.level {
                n0.next[i].naked_store(n.next[i].naked_load().unmarked());
            }
            for i in 0..n0.level {
                (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n0));
            }
            n0.live.naked_store(true);
        }
    }
    plan.mark_published();
}

/// Phase 1 of segment wiring — the k-op generalization of
/// [`wire_update`] (split) and [`wire_remove`] (merge): the replacement
/// chain's internal and exit pointers. The chain stays unpublished (no
/// shared pointer leads to it), so the stores are exclusive.
///
/// Level-`i` layout after wiring: each chain node points at the next
/// taller-than-`i` chain node, and the last one exits to the segment's
/// old external successor — read from the frozen dying nodes below the
/// old chain's height, and from the validated window (`na[i]`) above it.
/// The predecessor swing (`pa[i]` → first taller-than-`i` chain node)
/// happens in phase 2, [`publish_segment`] — version-bundle stamping
/// slots in between, because bundle appends are only safe while the
/// level-0 window pointer is still marked (the lease), and the publish
/// swing is precisely what ends it.
///
/// # Safety
///
/// Must only be called once, after the segment's LT transaction
/// committed, while holding the epoch guard used for the plan. The
/// dying run and the predecessor window were marked by the committed
/// transaction, so every store below runs under the marked-pointer
/// lease.
pub(crate) unsafe fn wire_chain<V>(seg: &ChainSegment<V>) {
    // SAFETY: segment pointers valid under the caller's guard; the dying
    // nodes' outgoing pointers are frozen (marked), so naked reads are
    // stable.
    unsafe {
        let exit = |i: usize| -> TaggedPtr<Node<V>> {
            match seg.old.iter().rev().find(|&&o| (*o).level > i) {
                Some(&o) => (*o).next[i].naked_load().unmarked(),
                None => TaggedPtr::new(seg.w.na[i]),
            }
        };
        for (j, &c) in seg.new.iter().enumerate() {
            let cn = &*c;
            for i in 0..cn.level {
                let ptr = match seg.new[j + 1..].iter().find(|&&d| (*d).level > i) {
                    Some(&d) => TaggedPtr::new(d),
                    None => exit(i),
                };
                cn.next[i].naked_store(ptr);
            }
        }
    }
}

/// Phase 2 of segment wiring: swing the predecessors and raise the `live`
/// flags — this is what publishes the chain, and what releases the
/// marked-pointer lease on the level-0 window. Any bundle stamping for
/// the segment must have completed before this call.
///
/// The swing target is `pa_wire[i]` — the window's `pa[i]` unless the
/// plan substituted an earlier same-commit segment's replacement node for
/// it (already wired: segments wire in key order).
///
/// # Safety
///
/// As for [`wire_chain`], which must already have run for `seg`.
pub(crate) unsafe fn publish_segment<V>(seg: &ChainSegment<V>) {
    // SAFETY: as for `wire_chain`.
    unsafe {
        for i in 0..seg.wire_height {
            let first = seg
                .new
                .iter()
                .find(|&&d| (*d).level > i)
                // INVARIANT: i < wire_height == max level over the chain,
                // so a witness node exists.
                .expect("wire_height is the chain's maximum level");
            (*seg.pa_wire[i]).next[i].naked_store(TaggedPtr::new(*first));
        }
        for &c in &seg.new {
            (*c).live.naked_store(true);
        }
    }
}

/// Wires a remove's replacement node (Fig. 13).
///
/// # Safety
///
/// Same contract as [`wire_update`].
pub(crate) unsafe fn wire_remove<V>(plan: &RemovePlan<V>) {
    // SAFETY: as in `wire_update`.
    unsafe {
        let nn = &*plan.n_new;
        if plan.merge {
            let n1 = &*plan.n1;
            // Outgoing links: the successor's where it exists, the removed
            // node's own above that.
            for i in 0..n1.level.min(nn.level) {
                nn.next[i].naked_store(n1.next[i].naked_load().unmarked());
            }
            for i in n1.level..nn.level {
                nn.next[i].naked_store((*plan.n0).next[i].naked_load().unmarked());
            }
        } else {
            for i in 0..nn.level {
                nn.next[i].naked_store((*plan.n0).next[i].naked_load().unmarked());
            }
        }
        for i in 0..nn.level {
            (*plan.w.pa[i]).next[i].naked_store(TaggedPtr::new(plan.n_new));
        }
        nn.live.naked_store(true);
    }
    plan.mark_published();
}
