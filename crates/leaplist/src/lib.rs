//! # leaplist — TM-supported linearizable range queries
//!
//! A Rust reproduction of **"Leaplist: Lessons Learned in Designing
//! TM-Supported Range Queries"** (Avni, Shavit, Suissa — PODC 2013).
//!
//! A Leap-List is a skip-list whose nodes are *fat*: each node stores up to
//! `K` immutable key-value pairs covering a key range, plus an embedded
//! bitwise trie for intra-node lookup. Because node contents never mutate
//! (nodes are replaced wholesale, splitting or merging as they grow and
//! shrink), a linearizable range query only has to validate one pointer per
//! `K` keys instead of protecting every key — which is how it beats a
//! skip-list's range scan by an order of magnitude while staying
//! consistent.
//!
//! The crate provides the paper's four synchronization schemes as separate
//! types sharing one physical layout:
//!
//! | Type | Paper name | Scheme |
//! |------|-----------|--------|
//! | [`LeapListLt`] | Leap-LT | COP search + Locking Transactions (the proposal) |
//! | [`LeapListCop`] | Leap-COP | COP search + fully transactional writes |
//! | [`LeapListTm`] | Leap-tm | every operation inside one transaction |
//! | [`LeapListRwlock`] | Leap-rwlock | one reader-writer lock per list |
//!
//! All four implement [`RangeMap`]. `LeapListLt`, `LeapListCop` and
//! `LeapListTm` also offer the paper's composite multi-list
//! `update_batch` / `remove_batch` (one linearizable action across `L`
//! lists — the motivating use case is updating several database table
//! indexes atomically).
//!
//! # Quickstart
//!
//! ```
//! use leaplist::{LeapListLt, Params};
//!
//! let index: LeapListLt<String> = LeapListLt::new(Params::default());
//! index.update(1001, "alice".to_string());
//! index.update(1002, "bob".to_string());
//! index.update(1007, "carol".to_string());
//!
//! // Linearizable range query: a consistent snapshot of [1000, 1005].
//! let page = index.range_query(1000, 1005);
//! assert_eq!(page.len(), 2);
//! assert_eq!(page[0].1, "alice");
//! ```
//!
//! # Keys
//!
//! Keys are `u64`; the value `u64::MAX` is reserved for the tail sentinel
//! (operations panic on it). Values are any `Clone + Send + Sync`
//! type.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod api;
mod bundle;
mod node;
mod params;
mod plan;
mod raw;
mod trie;
mod variants;
mod wire;

pub use api::{BatchOp, RangeMap};
pub use params::{Params, Traversal};
pub use trie::{binary_search_index, Trie};
pub use variants::cop::LeapListCop;
pub use variants::lt::{LeapListLt, ListSnapshot};
pub use variants::rwlock::LeapListRwlock;
pub use variants::tm::LeapListTm;

/// The largest usable key (`u64::MAX` is reserved for the tail sentinel).
pub const MAX_KEY: u64 = u64::MAX - 1;
