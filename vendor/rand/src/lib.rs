//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` 0.8 it actually uses: [`thread_rng`]
//! and [`Rng::gen`] over word-sized primitives. The generator is
//! SplitMix64 seeded per thread from the monotonic clock and a thread
//! counter — statistically fine for skip-list level coins and test
//! shuffling, **not** cryptographic.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Low-level source of random 64-bit words (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next random word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from random words (stand-in for sampling
/// with the `Standard` distribution).
pub trait Standard: Sized {
    /// Builds a value from the generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Returns a uniformly random value.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns a uniformly random value in `[low, high)`.
    ///
    /// Only the `u64` half-open form is provided; that is all this
    /// workspace needs.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: tiny, fast, passes BigCrush on its 64-bit stream.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

thread_local! {
    static THREAD_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::seed_from_u64(fresh_seed()));
}

fn fresh_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ c.wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Handle to this thread's generator (stand-in for `rand::thread_rng`).
#[derive(Debug)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
}

/// Returns a handle to a lazily-seeded per-thread generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_vary_and_cover_bits() {
        let mut rng = thread_rng();
        let mut or_acc = 0u64;
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        assert_ne!(a, b);
        for _ in 0..64 {
            or_acc |= rng.next_u64();
        }
        assert_eq!(or_acc.count_ones(), 64, "all bit positions appear");
    }

    #[test]
    fn dyn_rng_is_usable() {
        fn coin(rng: &mut (impl Rng + ?Sized)) -> bool {
            rng.gen()
        }
        let mut rng = thread_rng();
        // Not a tautology: just type-checks the ?Sized path.
        let _ = coin(&mut rng);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
