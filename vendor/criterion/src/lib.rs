//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the benchmark-harness subset it uses: [`Criterion::benchmark_group`],
//! group configuration (`sample_size`, `warm_up_time`, `measurement_time`),
//! [`BenchmarkId`], `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Results are printed as
//! `group/function/param  median  mean  (samples)` lines; there is no
//! statistical regression analysis or HTML report.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement backends (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter (`from_parameter` in real criterion).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id, so `bench_function` accepts both
/// strings and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    smoke: bool,
    /// Median and mean ns/iter plus sample count, filled by [`Bencher::iter`].
    result: Option<(f64, f64, usize)>,
}

impl Bencher {
    /// Times `routine`, first calibrating during the warm-up period, then
    /// taking `sample_size` samples spread over the measurement period.
    ///
    /// In smoke mode (`--test`, matching real criterion) the routine runs
    /// exactly once with no timing — just enough to prove the benchmark
    /// target still works.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            self.result = Some((0.0, 0.0, 1));
            return;
        }
        // Warm-up doubles as calibration: count how many iterations fit.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some((median, mean, samples.len()));
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    smoke: bool,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Calibration period before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total time budget spread across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            smoke: self.smoke,
            result: None,
        };
        f(&mut b);
        report(&self.name, &id.into_id(), b.result);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], passing `input` through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op beyond matching real criterion's API).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, result: Option<(f64, f64, usize)>) {
    match result {
        Some((median, mean, n)) => println!(
            "{group}/{id}{:>width$.1} ns/iter (median)  {mean:.1} ns/iter (mean)  n={n}",
            median,
            width = 50usize.saturating_sub(group.len() + id.len() + 1).max(12),
        ),
        None => println!("{group}/{id}  <no measurement: closure never called iter()>"),
    }
}

/// Throughput annotation (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Reads CLI arguments (`cargo bench -- <flags>`). Only `--test` is
    /// honoured (run every benchmark routine once, untimed — real
    /// criterion's smoke mode, used by CI to keep bench targets from
    /// rotting); all other flags are accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a configured benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
            smoke: self.smoke,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_id();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn smoke_mode_runs_routine_exactly_once() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0u64;
        c.benchmark_group("t").bench_function("s", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert_eq!(ran, 1, "smoke mode must run one untimed iteration");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }
}
