//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset it uses: [`Mutex`] / [`RwLock`] with parking_lot's
//! non-poisoning, `Result`-free guard API plus [`RwLock::data_ptr`]. Locks
//! are backed by `std::sync` primitives guarding a separate
//! [`UnsafeCell`], which is what makes `data_ptr` expressible.

#![deny(missing_docs)]

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    lock: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: standard container justification — the lock serializes access to
// the cell, so the wrapper is as thread-safe as T allows.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            lock: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Never poisons: a
    /// panicking holder simply releases.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.lock.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard {
            _guard: guard,
            data: self.data.get(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.lock.try_lock() {
            Ok(g) => Some(MutexGuard {
                _guard: g,
                data: self.data.get(),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                _guard: p.into_inner(),
                data: self.data.get(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    _guard: std::sync::MutexGuard<'a, ()>,
    data: *mut T,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the embedded std guard proves exclusive ownership.
        unsafe { &*self.data }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in deref.
        unsafe { &mut *self.data }
    }
}

/// A reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    lock: std::sync::RwLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: as for Mutex; shared read access additionally requires T: Sync
// through the Sync bound's `Send + Sync` conjunction used below.
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            lock: std::sync::RwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.lock.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard {
            _guard: guard,
            data: self.data.get(),
        }
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.lock.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard {
            _guard: guard,
            data: self.data.get(),
        }
    }

    /// Raw pointer to the protected data, usable while a guard obtained
    /// elsewhere proves the needed access (parking_lot's escape hatch for
    /// multi-lock algorithms).
    pub fn data_ptr(&self) -> *mut T {
        self.data.get()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    _guard: std::sync::RwLockReadGuard<'a, ()>,
    data: *mut T,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the embedded std read guard proves shared ownership.
        unsafe { &*self.data }
    }
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    _guard: std::sync::RwLockWriteGuard<'a, ()>,
    data: *mut T,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the embedded std write guard proves exclusive ownership.
        unsafe { &*self.data }
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in deref.
        unsafe { &mut *self.data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_try_lock() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none(), "held lock must not re-acquire");
        }
        assert_eq!(*m.try_lock().unwrap(), 6);
    }

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(unsafe { *l.data_ptr() }, 9);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must stay usable after a panic");
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
