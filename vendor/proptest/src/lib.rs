//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of proptest 1.x it uses: the [`proptest!`] test macro,
//! `ProptestConfig::with_cases`, `prop_assert!`/`prop_assert_eq!`,
//! integer-range / `any` / tuple strategies, `prop::collection::{vec,
//! btree_set}`, `.prop_map`, `Just` and [`prop_oneof!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the panic from the failing
//!   iteration; inputs are printed by the assertion message only.
//! * **Deterministic seeding.** Each test function derives its RNG from a
//!   fixed global seed plus the case index, so CI failures reproduce.

#![deny(missing_docs)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator for one test case.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        TestRng {
            state: test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ 0x5DEE_CE66,
        }
    }

    /// Next random word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// no value trees, hence no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(
    /// The value produced.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span + 1)) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a canonical "anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T` (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::*;

    /// Size specification: a fixed size or a half-open/inclusive range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<i32> for SizeRange {
        fn from(n: i32) -> Self {
            SizeRange::from(usize::try_from(n).expect("negative size"))
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange::from(
                usize::try_from(r.start).expect("negative size")
                    ..usize::try_from(r.end).expect("negative size"),
            )
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
        }
    }

    /// Generates a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Generates a `BTreeSet` whose target size is drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicate draws shrink the set, exactly as real proptest's
            // set strategies behave with narrow element domains; bound the
            // attempts so tiny domains cannot loop forever.
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// A `BTreeSet` of up to `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Weighted union strategy built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights cover the sampled interval")
    }
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// A failed property case (subset of `proptest::test_runner::TestCaseError`).
///
/// Property bodies and helpers return `Result<(), TestCaseError>`; the
/// runner panics with the carried message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Asserts a condition inside a property; on failure returns
/// `Err(TestCaseError)` from the enclosing function (this shim does not
/// shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

#[doc(hidden)]
pub fn __test_seed(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // One test function, then recurse on the remainder.
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::__test_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(seed, case);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                // The closure gives the body a `Result` context so `?` and
                // the early-return `prop_assert!` family both work.
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 1usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 3..7),
            s in prop::collection::btree_set(any::<u64>(), 0..10),
        ) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            2 => (0u64..4).prop_map(|k| ("a", k)),
            1 => (4u64..8).prop_map(|k| ("b", k)),
        ]) {
            match op {
                ("a", k) => prop_assert!(k < 4),
                ("b", k) => prop_assert!((4..8).contains(&k)),
                other => panic!("impossible arm {other:?}"),
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(crate::__test_seed("x"), 3);
        let mut b = crate::TestRng::for_case(crate::__test_seed("x"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = crate::TestRng::for_case(1, 1);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
