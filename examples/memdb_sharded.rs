//! The paper's in-memory database riding LeapStore: a table whose
//! primary and secondary indexes live in prefix-tagged subspaces of one
//! sharded store, so index maintenance is a single cross-shard
//! transaction and a background rebalancer can split index-heavy shards
//! while queries run.
//!
//! ```text
//! cargo run --release --example memdb_sharded
//! ```

use leap_memdb::{Backend, Schema, Table};
use leap_store::{RebalancePolicy, Rebalancer};
use leaplist::Params;
use std::time::Duration;

fn main() {
    // user (free-form), age (indexed), score (indexed): one store, three
    // subspaces, six shards. Even strides over the tagged keyspace put
    // each subspace's populated low end on one shard and leave every
    // other shard empty — a skew the rebalancer has to repair.
    let table = Table::with_backend(
        Schema::new(&["user", "age", "score"])
            .with_index("age")
            .with_index("score"),
        Backend::Sharded {
            params: Params::default(),
            shards: Some(6),
            rebalance: RebalancePolicy {
                chunk: 512,
                split_ratio: 1.5,
                min_split_keys: 256,
                ..RebalancePolicy::default()
            },
        },
    );

    for i in 0..30_000u64 {
        table
            .insert(&[i, i % 90, (i * 7) % 1_000])
            .expect("valid row");
    }
    println!("table: {table:?}");
    println!("\nper-subspace placement before rebalancing:");
    for ss in table.subspace_stats().expect("sharded backend") {
        println!(
            "  subspace {} ({}): {:>6} keys on shards {:?}",
            ss.tag,
            match ss.tag {
                0 => "primary",
                1 => "age idx",
                _ => "score idx",
            },
            ss.keys,
            ss.shards
        );
    }

    // A background rebalancer splits the key-heavy shards (median-key
    // splits) while the table keeps answering queries.
    let store = table.store().expect("sharded backend").clone();
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
    let expect_thirties = (0..30_000u64)
        .filter(|i| (30..=39).contains(&(i % 90)))
        .count();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let mut snapshots = 0u64;
    while store.stats().migrations_completed < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "rebalancer made no progress"
        );
        // Queries during migration: every scan is one consistent
        // snapshot including both sides of the in-flight overlay.
        let thirties = table.count_by("age", 30, 39).expect("indexed");
        assert_eq!(thirties, expect_thirties, "scan racing the rebalancer");
        snapshots += 1;
    }
    let actions = rebalancer.stop().expect("rebalancer survived the run");
    println!("\nrebalancer: {actions} actions, {snapshots} racing snapshots checked");

    println!("\nper-subspace placement after rebalancing:");
    for ss in table.subspace_stats().expect("sharded backend") {
        println!(
            "  subspace {}: {:>6} keys on shards {:?}",
            ss.tag, ss.keys, ss.shards
        );
    }
    let st = store.stats();
    println!(
        "\nstore: epoch={} migrations={} key_spread={} abort_rate={:.4}",
        st.epoch,
        st.migrations_completed,
        st.key_spread(),
        st.abort_rate()
    );

    // An indexed-column update is ONE store transaction: the age entry
    // moves buckets, the primary and score entries rewrite, atomically.
    let commits_before = store.stats().stm.total_commits();
    let id = table.insert(&[99_999, 30, 500]).expect("valid row");
    table.update_column(id, "age", 60).expect("live row");
    println!(
        "\nindexed-column update: {} store transaction(s)",
        store.stats().stm.total_commits() - commits_before - 1 // minus the insert
    );

    // Paged index scans route through the store's cursor.
    let mut pages = 0usize;
    let mut rows = 0usize;
    for page in table
        .scan_by_pages("score", 0, 499, 1_024)
        .expect("indexed")
    {
        pages += 1;
        rows += page.len();
    }
    println!("paged score scan: {rows} rows over {pages} bounded pages");
}
