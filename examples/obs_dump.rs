//! Observability demo: drive a sharded store through puts, gets, batched
//! drains and a live shard split, then scrape everything the `leap-obs`
//! core recorded — once as one JSON document (`LeapStore::stats`), once
//! as Prometheus text (what a scrape endpoint would serve), plus a
//! table-level registry from `leap-memdb`.
//!
//! ```sh
//! cargo run --release --example obs_dump
//! cargo run --release --example obs_dump | grep '^store_op_put_ns'
//! ```

use leap_memdb::{Schema, Table};
use leap_store::{Batcher, LeapStore, Partitioning, StoreConfig};
use std::sync::Arc;

fn main() {
    // A 2-shard range store; observability is on by default.
    let store = Arc::new(LeapStore::<u64>::new(
        StoreConfig::new(2, Partitioning::Range).with_key_space(10_000),
    ));

    // Direct ops feed the per-op-kind latency histograms...
    for k in 0..2_000u64 {
        store.put(k, k * 3);
    }
    for k in (0..2_000u64).step_by(7) {
        let _ = store.get(k);
    }
    let _ = store.range(100, 400);

    // ...batched ops emit `batcher_drain` timeline events...
    let batcher = Batcher::new(store.clone());
    for k in 2_000..2_400u64 {
        batcher.put(k, k);
    }

    // ...and a live split writes `migration_begin` -> `migration_chunk`*
    // -> `migration_complete` -> `epoch_flip` onto the same timeline.
    store.split_shard(0, 1_000).expect("split shard 0");
    store.rebalance_until_idle();

    let stats = store.stats();
    println!("== store stats (JSON, one scrape) ==");
    println!("{}", stats.to_json());
    println!();
    println!("== store stats (Prometheus text) ==");
    print!("{}", stats.to_prometheus());

    // The table layer keeps its own registry of op histograms.
    let table = Table::sharded(
        Schema::new(&["user", "age", "score"])
            .with_index("age")
            .with_index("score"),
    );
    for i in 0..500u64 {
        table.insert(&[i, i % 90, i % 100]).unwrap();
    }
    let _ = table.scan_by("age", 18, 65).unwrap();
    println!();
    println!("== table registry (JSON) ==");
    println!("{}", table.obs().registry().snapshot_json().render());
    println!();
    println!("== table registry (Prometheus text) ==");
    print!("{}", table.obs().registry().to_prometheus());
}
