//! The paper's motivating scenario (§1, §4): an in-memory database table
//! with several **indexes**, each a Leap-List, where every row mutation
//! must update all indexes as one linearizable action — the composite
//! `Update(ll, k, v, s)` over `L = 4` lists.
//!
//! The table stores orders; the indexes are keyed by order id, customer
//! id, timestamp and amount. Writers insert orders; analysts run
//! range queries ("orders between t1 and t2", "amounts 100..200") that
//! must each be a consistent snapshot, while a cross-index auditor checks
//! that the composite updates were atomic.
//!
//! ```sh
//! cargo run --release --example db_indexes
//! ```

use leap_bench::rng::Rng64;
use leaplist::{LeapListLt, Params};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const IDX_ORDER: usize = 0; // key: order id      -> row id
const IDX_CUSTOMER: usize = 1; // key: customer<<32|id -> row id
const IDX_TIME: usize = 2; // key: time<<32|id   -> row id
const IDX_AMOUNT: usize = 3; // key: amount<<32|id -> row id

fn composite(hi: u64, id: u64) -> u64 {
    (hi << 32) | (id & 0xFFFF_FFFF)
}

fn main() {
    // Four indexes sharing one transactional domain, as the paper's
    // L-Leap-List requires for composed operations.
    let indexes = Arc::new(LeapListLt::<u64>::group(4, Params::default()));
    let next_id = Arc::new(AtomicU64::new(1));
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: each new order lands in all four indexes atomically.
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let indexes = indexes.clone();
            let next_id = next_id.clone();
            std::thread::spawn(move || {
                let mut rng = Rng64::new(0xD0 + t);
                for _ in 0..5_000 {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    let customer = rng.below(100);
                    let time = rng.below(10_000);
                    let amount = rng.below(1_000);
                    let refs: Vec<&LeapListLt<u64>> = indexes.iter().collect();
                    // The primary index stores the customer id as its value
                    // so auditors can locate the secondary entry directly.
                    LeapListLt::update_batch(
                        &refs,
                        &[
                            id,
                            composite(customer, id),
                            composite(time, id),
                            composite(amount, id),
                        ],
                        &[customer, id, id, id],
                    );
                }
            })
        })
        .collect();

    // Analyst: consistent range scans over the time index ("orders in the
    // last window") — each result is a true snapshot.
    let analyst = {
        let indexes = indexes.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut scans = 0usize;
            let mut rows = 0usize;
            let mut rng = Rng64::new(42);
            while !stop.load(Ordering::Acquire) {
                let t0 = rng.below(9_000);
                let window =
                    indexes[IDX_TIME].range_query(composite(t0, 0), composite(t0 + 500, 0));
                rows += window.len();
                scans += 1;
            }
            (scans, rows)
        })
    };

    // Auditor: every order id found in the primary index must already be
    // visible in the amount index's full range — composite updates are
    // atomic, so an id can never appear in one index "early".
    let auditor = {
        let indexes = indexes.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut audited = 0usize;
            let mut rng = Rng64::new(7);
            while !stop.load(Ordering::Acquire) {
                // Sample a window of committed orders from the primary
                // index; the batch is atomic, so every one of them must
                // already be visible in the customer index too.
                let lo = rng.below(10_000);
                let window = indexes[IDX_ORDER].range_query(lo, lo + 256);
                for (id, customer) in window {
                    assert!(
                        indexes[IDX_CUSTOMER]
                            .lookup(composite(customer, id))
                            .is_some(),
                        "order {id} present in primary index but absent from customer index"
                    );
                    audited += 1;
                }
            }
            audited
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let (scans, rows) = analyst.join().unwrap();
    let audited = auditor.join().unwrap();

    let orders = next_id.load(Ordering::Relaxed) - 1;
    println!("inserted {orders} orders into 4 indexes atomically");
    println!("analyst ran {scans} consistent time-window scans ({rows} rows)");
    println!("auditor verified {audited} cross-index memberships");
    println!(
        "index sizes: order={} customer={} time={} amount={}",
        indexes[IDX_ORDER].len(),
        indexes[IDX_CUSTOMER].len(),
        indexes[IDX_TIME].len(),
        indexes[IDX_AMOUNT].len(),
    );
    assert_eq!(indexes[IDX_ORDER].len() as u64, orders);
}
