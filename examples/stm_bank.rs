//! Tour of the `leap-stm` substrate on its own: word-based transactions,
//! the two commit strategies (TL2-style write-back vs GCC-TM-style
//! write-through), naked access, and abort statistics — the machinery the
//! Leap-List's Locking Transactions are built from.
//!
//! ```sh
//! cargo run --release --example stm_bank
//! ```

use leap_stm::{atomically, Mode, StmDomain, TVar};
use std::sync::Arc;

const ACCOUNTS: usize = 64;
const INITIAL: u64 = 1_000;

fn run_bank(mode: Mode) {
    let domain = Arc::new(StmDomain::with_config(mode, 14));
    let accounts: Arc<Vec<TVar<u64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());

    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let domain = domain.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || {
                let mut state = 0x5EED + t;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for _ in 0..20_000 {
                    let from = (rand() % ACCOUNTS as u64) as usize;
                    let to = (rand() % ACCOUNTS as u64) as usize;
                    let amount = rand() % 20;
                    if from == to {
                        continue;
                    }
                    // One atomic transfer; the closure may run many times
                    // under contention, the commit happens once.
                    atomically(&domain, |tx| {
                        let f = tx.read(&accounts[from])?;
                        if f >= amount {
                            let t_ = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], f - amount)?;
                            tx.write(&accounts[to], t_ + amount)?;
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();

    // A concurrent auditor takes consistent snapshots of all 64 accounts.
    let auditor = {
        let domain = domain.clone();
        let accounts = accounts.clone();
        std::thread::spawn(move || {
            for _ in 0..2_000 {
                let total = atomically(&domain, |tx| {
                    let mut sum = 0u64;
                    for a in accounts.iter() {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total,
                    ACCOUNTS as u64 * INITIAL,
                    "torn snapshot under {mode:?}"
                );
            }
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    auditor.join().unwrap();

    let final_total: u64 = accounts.iter().map(|a| a.naked_load()).sum();
    let stats = domain.stats();
    println!("--- {mode:?} ---");
    println!(
        "final total  : {final_total} (expected {})",
        ACCOUNTS as u64 * INITIAL
    );
    println!("stats        : {stats}");
    println!(
        "abort ratio  : {:.2}%",
        100.0 * stats.total_aborts() as f64
            / (stats.total_commits() + stats.total_aborts()).max(1) as f64
    );
    assert_eq!(final_total, ACCOUNTS as u64 * INITIAL);
}

fn main() {
    println!("Bank transfer invariants under both STM commit strategies\n");
    run_bank(Mode::WriteBack);
    run_bank(Mode::WriteThrough);

    // Weak isolation demo: under write-through, naked readers can observe
    // tentative (later rolled back) data — the hazard the Leap-List's
    // marked-pointer protocol exists to handle.
    let domain = StmDomain::with_config(Mode::WriteThrough, 10);
    let v = TVar::new(1u64);
    let mut tx = leap_stm::Txn::begin(&domain);
    tx.write(&v, 999).unwrap();
    println!(
        "\nwrite-through, naked read mid-transaction: {}",
        v.naked_load()
    );
    drop(tx); // roll back
    println!(
        "after rollback                            : {}",
        v.naked_load()
    );
    assert_eq!(v.naked_load(), 1);
}
