//! Why linearizable range queries matter: a live "analytics" workload that
//! catches **torn snapshots**.
//!
//! Writers maintain the invariant that each account's pair of keys
//! `(2i, 2i+1)` always holds two halves that sum to a constant: every
//! transfer moves an amount from one half to the other *within one node*
//! generation. A consistent range query therefore always sees pairs
//! summing to the constant. We run the same workload against:
//!
//! * `LeapListLt::range_query` — linearizable (paper's proposal), and
//! * `CasSkipList::range_query_inconsistent` — the skip-list baseline the
//!   paper calls out as non-atomic (§3.1),
//!
//! and count invariant violations observed by each. The Leap-List must
//! report **zero**; the skip-list scan usually tears within seconds.
//!
//! ```sh
//! cargo run --release --example analytics_scan
//! ```

use leap_bench::rng::Rng64;
use leap_skiplist::CasSkipList;
use leaplist::{LeapListLt, Params};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ACCOUNTS: u64 = 2_000;
const TOTAL: u64 = 1_000;

/// Writers move value between the two halves of an account. For the
/// Leap-List the two keys are updated through the composite batch API over
/// two *lists*... but the invariant here is within ONE list, so we instead
/// store both halves in ONE value word: low 32 bits + high 32 bits.
/// A single `update` is atomic, the pair invariant is per-key, and the
/// *cross-key* invariant is that the sum of all accounts equals
/// `ACCOUNTS * TOTAL` — which only a consistent scan observes.
fn pack(a: u64, b: u64) -> u64 {
    (a << 32) | b
}

fn halves(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xFFFF_FFFF)
}

fn main() {
    let leap = Arc::new(LeapListLt::<u64>::new(Params::default()));
    let skip = Arc::new(CasSkipList::new());
    for i in 0..ACCOUNTS {
        leap.update(i, pack(TOTAL, 0));
        skip.insert(i, pack(TOTAL, 0));
    }

    let stop = Arc::new(AtomicBool::new(false));
    // Writers: move random amounts between the halves of accounts AND
    // between neighbouring accounts (the cross-key transfer is two updates
    // on the skip-list, one torn window; on the Leap-List we emulate the
    // same two-step write so the comparison is fair — the difference under
    // test is the READ side).
    let writers: Vec<_> = (0..2u64)
        .map(|t| {
            let leap = leap.clone();
            let skip = skip.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = Rng64::new(0xACC + t);
                let mut moves = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let i = rng.below(ACCOUNTS - 1);
                    let amount = rng.below(50);
                    // Cross-account transfer: i gives `amount` to i+1.
                    // Executed as one atomic update per key on both
                    // structures; the PAIR of updates is not atomic, so
                    // only the in-value halves invariant is per-snapshot
                    // checkable. Keep per-key totals constant instead:
                    let v = leap.lookup(i).unwrap();
                    let (a, b) = halves(v);
                    let shift = amount.min(a);
                    leap.update(i, pack(a - shift, b + shift));
                    let w = skip.lookup(i).unwrap();
                    let (c, d) = halves(w);
                    let shift2 = amount.min(c);
                    skip.insert(i, pack(c - shift2, d + shift2));
                    moves += 1;
                }
                moves
            })
        })
        .collect();

    // Structural churn: another writer keeps inserting/removing spacer
    // keys so Leap-List nodes split and merge and skip-list towers change
    // — this is what makes naive scans tear.
    let churn = {
        let leap = leap.clone();
        let skip = skip.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut rng = Rng64::new(0xC0DE);
            while !stop.load(Ordering::Acquire) {
                let k = ACCOUNTS + rng.below(ACCOUNTS);
                if rng.below(2) == 0 {
                    leap.update(k, pack(TOTAL, 0));
                    skip.insert(k, pack(TOTAL, 0));
                } else {
                    leap.remove(k);
                    skip.remove(k);
                }
            }
        })
    };

    // Analysts: scan [0, ACCOUNTS) and check every account's halves sum to
    // TOTAL. The Leap-List snapshot is linearizable -> zero violations
    // guaranteed. The skip-list scan validates nothing -> it may observe a
    // value mid-traversal that is fine, but it can MISS or DOUBLE-COUNT
    // keys while towers move underneath it, so we check scan cardinality
    // and per-key invariants.
    let mut leap_scans = 0u64;
    let mut leap_violations = 0u64;
    let mut skip_scans = 0u64;
    let mut skip_anomalies = 0u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        let snap = leap.range_query(0, ACCOUNTS - 1);
        leap_scans += 1;
        if snap.len() != ACCOUNTS as usize {
            leap_violations += 1;
        }
        for (k, v) in &snap {
            let (a, b) = halves(*v);
            if a + b != TOTAL {
                eprintln!("LEAP TEAR at key {k}: {a} + {b} != {TOTAL}");
                leap_violations += 1;
            }
        }

        let scan = skip.range_query_inconsistent(0, ACCOUNTS - 1);
        skip_scans += 1;
        if scan.len() != ACCOUNTS as usize {
            skip_anomalies += 1; // missed or duplicated keys mid-scan
        }
        for (_, v) in &scan {
            let (a, b) = halves(*v);
            if a + b != TOTAL {
                skip_anomalies += 1;
            }
        }
    }
    stop.store(true, Ordering::Release);
    let moves: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    churn.join().unwrap();

    println!("writer transfers executed : {moves}");
    println!("Leap-LT   scans: {leap_scans:>6}   snapshot violations: {leap_violations}");
    println!("Skip-cas  scans: {skip_scans:>6}   scan anomalies     : {skip_anomalies}");
    assert_eq!(
        leap_violations, 0,
        "linearizable range query must never tear"
    );
    println!(
        "=> Leap-List range queries stayed consistent; the unvalidated skip-list \
         scan showed {skip_anomalies} anomalies under identical load."
    );
}
