//! The paper's future-work application (§4), built: an in-memory database
//! whose B-tree indexes are replaced by Leap-Lists. Inserts and deletes
//! maintain the primary and every secondary index as ONE linearizable
//! action; index range scans are consistent snapshots.
//!
//! ```sh
//! cargo run --release --example memdb_demo
//! ```

use leap_memdb::{Db, Schema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let db = Db::new();
    let orders = db
        .create_table(
            "orders",
            Schema::new(&["customer", "amount", "day", "flags"])
                .with_index("amount")
                .with_index("day"),
        )
        .unwrap();
    println!("created {db:?}");

    // OLTP side: concurrent writers inserting and deleting orders. Every
    // insert hits the primary index and both secondary indexes atomically.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let orders = orders.clone();
            std::thread::spawn(move || {
                let mut state = 0xD1CEu64 + t;
                let mut rand = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let mut live = Vec::new();
                let mut inserted = 0u64;
                for _ in 0..8_000 {
                    if live.len() > 500 && rand() % 3 == 0 {
                        let id = live.swap_remove((rand() as usize) % live.len());
                        let _ = orders.delete(id);
                    } else {
                        let id = orders
                            .insert(&[rand() % 1_000, rand() % 500, rand() % 365, rand()])
                            .unwrap();
                        live.push(id);
                        inserted += 1;
                    }
                }
                inserted
            })
        })
        .collect();

    // OLAP side: a reporting thread running consistent index scans while
    // the writers churn ("today's orders over 400").
    let reporter = {
        let orders = orders.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut reports = 0u64;
            let mut max_big_orders = 0usize;
            while !stop.load(Ordering::Acquire) {
                let big = orders.scan_by("amount", 400, 499).unwrap();
                // Covering index: the snapshot carries full rows, so the
                // per-row predicate re-check must always agree.
                for (id, row) in &big {
                    assert!(
                        (400..=499).contains(&row.get(1).unwrap()),
                        "inconsistent covering entry for {id}"
                    );
                }
                max_big_orders = max_big_orders.max(big.len());
                reports += 1;
            }
            (reports, max_big_orders)
        })
    };

    let start = Instant::now();
    let inserted: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    stop.store(true, Ordering::Release);
    let (reports, max_big) = reporter.join().unwrap();
    let secs = start.elapsed().as_secs_f64();

    println!("writers inserted {inserted} orders in {secs:.2}s");
    println!("reporter completed {reports} consistent scans (max 'big order' count {max_big})");
    println!(
        "final: {} rows; amount-index rows {}, day-index rows {}",
        orders.len(),
        orders.count_by("amount", 0, 499).unwrap(),
        orders.count_by("day", 0, 364).unwrap(),
    );
    assert_eq!(orders.len(), orders.count_by("amount", 0, 499).unwrap());
    assert_eq!(orders.len(), orders.count_by("day", 0, 364).unwrap());

    // A quick analytic query mix at the end.
    let q4 = orders.count_by("day", 274, 364).unwrap();
    println!("orders in Q4: {q4}");
}
