//! LeapStore demo: a sharded range-store with cross-shard transactions,
//! linearizable cross-shard range queries, a coalescing batcher front-end,
//! the per-shard statistics surface — and live resharding: a zipfian load
//! makes one shard hot, and an online split migrates half of it away while
//! the store keeps serving.
//!
//! ```sh
//! cargo run --release --example leapstore
//! ```

use leap_bench::rng::Rng64;
use leap_bench::zipf::Zipf;
use leap_store::{BatchOp, Batcher, LeapStore, Partitioning, RebalanceAction, StoreConfig};
use std::sync::Arc;

fn main() {
    // A 4-shard store slicing the keyspace [0, 1M) contiguously: range
    // queries only visit the shards overlapping the queried interval.
    let store = Arc::new(LeapStore::<u64>::new(
        StoreConfig::new(4, Partitioning::Range).with_key_space(1_000_000),
    ));

    // Single-key operations route to one shard each.
    for k in (0..1_000_000).step_by(10_007) {
        store.put(k, k / 1_000);
    }
    println!(
        "loaded {} keys across {} shards",
        store.len(),
        store.shards()
    );

    // A cross-shard batch: all four writes commit as ONE transaction. A
    // concurrent range query sees all of them or none of them.
    let old = store.multi_put(&[(5, 1), (260_000, 2), (510_000, 3), (760_000, 4)]);
    println!("multi_put previous values: {old:?}");

    // Mixed batch: move a key between shards atomically (delete + insert),
    // the index-maintenance shape the paper's §4 database needs.
    store.apply(&[BatchOp::Remove(5), BatchOp::Update(990_000, 1)]);
    assert_eq!(store.get(5), None);
    assert_eq!(store.get(990_000), Some(1));

    // Linearizable cross-shard range query: one consistent snapshot even
    // though it spans two shards.
    let page = store.range(200_000, 300_000);
    println!(
        "range [200k, 300k]: {} keys, first={:?}, last={:?}",
        page.len(),
        page.first(),
        page.last()
    );
    assert!(page.windows(2).all(|w| w[0].0 < w[1].0));

    // The batcher front-end: worker threads submit single-key ops; under
    // contention they coalesce into grouped multi-list transactions.
    let batcher = Arc::new(Batcher::new(store.clone()));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let b = batcher.clone();
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    b.put(t * 250_000 + i, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let bs = batcher.stats();
    println!(
        "batcher: {} ops in {} combined calls (avg batch {:.2}, max {})",
        bs.ops,
        bs.batches,
        bs.avg_batch(),
        bs.max_batch
    );

    // The stats surface: per-shard op counters plus the shared domain's
    // commit/abort counters (one JSON object for dashboards).
    let stats = store.stats();
    println!("\nper-shard statistics:\n{stats}");
    println!("\njson: {}", stats.to_json());

    // ── Live resharding ────────────────────────────────────────────────
    // A zipfian (θ = 0.99) load over the low keys piles almost everything
    // onto shard 0's interval: the classic hot shard.
    let zipf = Zipf::new(200_000, 0.99);
    let mut rng = Rng64::new(0x5EED);
    for _ in 0..30_000 {
        store.put(zipf.sample(&mut rng), 7);
    }
    let before = store.stats();
    println!("\nbefore split (key_spread = {}):", before.key_spread());
    for s in before.shards.iter().filter(|s| s.owned) {
        println!("  shard {:>2}: {:>6} keys", s.shard, s.keys);
    }

    // Split the hot shard at the middle of its interval. The migration is
    // online: keys move in bounded single-transaction chunks, and every
    // `rebalance_step` in between leaves the store fully serving — the
    // range query below runs mid-migration and stays consistent.
    let hot = before
        .shards
        .iter()
        .filter(|s| s.owned)
        .max_by_key(|s| s.keys)
        .expect("some shard owns keys")
        .shard;
    let (lo, hi) = store.router().shard_interval(hot).expect("hot owns keys");
    let dst = store.split_shard(hot, lo + (hi - lo) / 8).expect("split");
    println!("\nsplitting hot shard {hot} -> {dst} (online, chunked):");
    let mut chunks = 0;
    loop {
        match store.rebalance_step() {
            RebalanceAction::Moved { keys, .. } => {
                chunks += 1;
                if chunks % 20 == 0 {
                    let mid = store.range(0, 1_000);
                    println!(
                        "  ...{chunks} chunks in, {keys} keys/chunk, range [0,1000] \
                         still consistent ({} keys)",
                        mid.len()
                    );
                }
            }
            RebalanceAction::Completed { epoch } => {
                println!("  migration complete: routing epoch {epoch}");
                break;
            }
            other => {
                println!("  {other:?}");
                break;
            }
        }
    }

    let after = store.stats();
    println!("\nafter split (key_spread = {}):", after.key_spread());
    for s in after.shards.iter().filter(|s| s.owned) {
        println!("  shard {:>2}: {:>6} keys", s.shard, s.keys);
    }
    assert!(after.key_spread() < before.key_spread());

    // Paged scans keep working across the epoch change: each page is one
    // bounded linearizable transaction with a resume key.
    let mut pages = 0;
    let mut scanned = 0;
    for page in store.scan_pages(0, 999_999, 4_096) {
        pages += 1;
        scanned += page.len();
    }
    println!("\ncursor scan: {scanned} keys in {pages} pages of <= 4096");
    assert_eq!(scanned, store.len());
}
