//! Quickstart: the Leap-List public API in two minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use leaplist::{LeapListLt, Params, RangeMap};
use std::sync::Arc;

fn main() {
    // A Leap-List with the paper's parameters: fat nodes of up to K=300
    // immutable key-value pairs, max tower level 10.
    let list: Arc<LeapListLt<String>> = Arc::new(LeapListLt::new(Params::default()));

    // Point operations.
    list.update(100, "first".to_string());
    list.update(250, "second".to_string());
    list.update(4000, "third".to_string());
    assert_eq!(list.lookup(250).as_deref(), Some("second"));
    assert_eq!(
        list.update(250, "second-v2".to_string()).as_deref(),
        Some("second")
    );

    // The headline operation: a linearizable range query. The returned
    // pairs are a consistent snapshot — no concurrent update can tear it.
    let snapshot = list.range_query(0, 1000);
    println!("range [0, 1000]:");
    for (k, v) in &snapshot {
        println!("  {k:>6} -> {v}");
    }
    assert_eq!(snapshot.len(), 2);

    // Concurrency: share the Arc across threads; every operation is
    // linearizable.
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let list = list.clone();
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    list.update(10_000 + t * 1000 + i % 1000, format!("w{t}-{i}"));
                }
            })
        })
        .collect();
    let reader = {
        let list = list.clone();
        std::thread::spawn(move || {
            let mut max_seen = 0;
            for _ in 0..200 {
                let snap = list.range_query(10_000, 14_000);
                // Snapshots are always sorted and consistent.
                assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
                max_seen = max_seen.max(snap.len());
            }
            max_seen
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    println!(
        "largest concurrent snapshot: {} keys",
        reader.join().unwrap()
    );

    // All four variants share one trait, so algorithms swap freely.
    fn count_in_range(map: &dyn RangeMap<String>, lo: u64, hi: u64) -> usize {
        map.range_query(lo, hi).len()
    }
    println!(
        "keys in [10000, 14000]: {}",
        count_in_range(list.as_ref(), 10_000, 14_000)
    );
    println!("total keys: {}", list.len());
}
