//! # leaplist-repro — facade for the Leap-List (PODC 2013) reproduction
//!
//! Re-exports the workspace crates so downstream users can depend on one
//! package:
//!
//! * [`leaplist`] — the Leap-List itself (four synchronization variants).
//! * [`stm`] — the word-based STM substrate (`leap-stm`).
//! * [`ebr`] — epoch-based reclamation (`leap-ebr`).
//! * [`skiplist`] — the evaluation's skip-list baselines (`leap-skiplist`).
//! * [`store`] — LeapStore, the sharded range-store service layer
//!   (`leap-store`).
//! * [`memdb`] — the in-memory table store with Leap-List indexes
//!   (`leap-memdb`).
//! * [`mod@bench`] — workload generator and figure harness (`leap-bench`).
//!
//! See the repository README for the architecture overview, DESIGN.md for
//! the system inventory, and EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```
//! use leaplist_repro::leaplist::{LeapListLt, Params};
//! let l: LeapListLt<u64> = LeapListLt::new(Params::default());
//! l.update(1, 2);
//! assert_eq!(l.range_query(0, 10), vec![(1, 2)]);
//! ```

pub use leap_bench as bench;
pub use leap_ebr as ebr;
pub use leap_memdb as memdb;
pub use leap_skiplist as skiplist;
pub use leap_stm as stm;
pub use leap_store as store;
pub use leaplist;
